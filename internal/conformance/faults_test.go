package conformance

import (
	"bytes"
	"testing"

	"msgorder/internal/catalog"
	"msgorder/internal/check"
	"msgorder/internal/event"
	"msgorder/internal/predicate"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/fifo"
	"msgorder/internal/protocols/flush"
	"msgorder/internal/protocols/kweaker"
	"msgorder/internal/protocols/sync"
	"msgorder/internal/protocols/tagless"
	"msgorder/internal/trace"
	"msgorder/internal/transport"
)

// lossyCase pairs a catalog protocol with the specification it must
// keep satisfying on a lossy network, and the 50-message workload that
// exercises it.
type lossyCase struct {
	name string
	cfg  Config
	spec *predicate.Predicate // nil: completeness (X_async) only
}

// lossyCatalog builds the full protocol catalog with 50-user-message
// workloads (broadcast configs invoke fewer requests, each fanning out
// to the other processes).
func lossyCatalog(t *testing.T) []lossyCase {
	t.Helper()
	unicast := func(maker protocol.Maker, procs int) Config {
		return Config{Maker: maker, Procs: procs, InitialMsgs: 50}
	}
	flushCfg := unicast(flush.Maker, 3)
	flushCfg.Colors = []event.Color{
		event.ColorNone, event.ColorNone, event.ColorNone, event.ColorRed,
	}
	bssCfg := unicast(causal.BSSMaker, 3)
	bssCfg.Broadcast = true
	bssCfg.InitialMsgs = 25 // x2 destinations = 50 user messages
	return []lossyCase{
		{"tagless", unicast(tagless.Maker, 3), nil},
		{"fifo", unicast(fifo.Maker, 3), pred(t, "fifo")},
		{"causal-rst", unicast(causal.RSTMaker, 3), pred(t, "causal-b2")},
		{"causal-ses", unicast(causal.SESMaker, 3), pred(t, "causal-b2")},
		{"causal-bss", bssCfg, pred(t, "causal-b2")},
		{"sync", unicast(sync.Maker, 3), pred(t, "sync-2")},
		{"sync-ra", unicast(sync.RAMaker, 3), pred(t, "sync-2")},
		{"flush", flushCfg, pred(t, "local-forward-flush")},
		{"kweaker-0", unicast(kweaker.Maker(0), 2), catalog.KWeakerChannel(0)},
		{"kweaker-1", unicast(kweaker.Maker(1), 2), catalog.KWeakerChannel(1)},
		{"kweaker-2", unicast(kweaker.Maker(2), 2), catalog.KWeakerChannel(2)},
	}
}

// TestCatalogSurvivesLossyNetwork is the headline acceptance check:
// with 20% drops and 10% duplicates, every protocol in the catalog
// completes a 50-message run with zero specification violations, and
// the transport visibly worked for it (retransmits, dups dropped).
func TestCatalogSurvivesLossyNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog sweep: skipped in -short mode")
	}
	for _, c := range lossyCatalog(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			cfg := c.cfg
			cfg.Seed = 1
			cfg.Faults = &transport.FaultPlan{DropRate: 0.2, DupRate: 0.1}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.View.IsComplete() {
				t.Fatal("run incomplete despite reliable transport")
			}
			if got := res.Stats.UserMessages; got != 50 {
				t.Fatalf("user messages = %d, want 50", got)
			}
			if c.spec != nil {
				if m, bad := check.FindViolation(res.View, c.spec); bad {
					t.Fatalf("specification violated under loss: %s", m.String(c.spec))
				}
			}
			if res.Stats.Retransmits == 0 {
				t.Fatal("expected nonzero retransmits at 20% drop rate")
			}
			if res.Stats.DupsDropped == 0 {
				t.Fatal("expected nonzero dups dropped at 10% dup rate")
			}
		})
	}
}

// TestSeededLossPerClass exercises one protocol per capability class
// with chained workloads (delivery-triggered follow-ups) over several
// seeds — the interaction of causal chains with retransmission delays.
func TestSeededLossPerClass(t *testing.T) {
	classes := []struct {
		name  string
		maker protocol.Maker
		spec  string
	}{
		{"tagless", tagless.Maker, ""},               // tagless class
		{"causal-rst", causal.RSTMaker, "causal-b2"}, // tagged class
		{"sync", sync.Maker, "sync-2"},               // general class
	}
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	for _, c := range classes {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= int64(seeds); seed++ {
				cfg := chainCfg(c.maker)
				cfg.Seed = seed
				cfg.Faults = &transport.FaultPlan{DropRate: 0.25, DupRate: 0.1, DelayJitter: 0.1}
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !res.View.IsComplete() {
					t.Fatalf("seed %d: incomplete", seed)
				}
				if c.spec != "" {
					if m, bad := check.FindViolation(res.View, pred(t, c.spec)); bad {
						t.Fatalf("seed %d: violated %s: %s", seed, c.spec, m.String(pred(t, c.spec)))
					}
				}
			}
		})
	}
}

// TestFaultMatrixSweep smoke-tests the matrix driver: a fault-free
// cell must report zero transport work, a lossy cell nonzero, and the
// FIFO protocol must stay violation-free in both.
func TestFaultMatrixSweep(t *testing.T) {
	cfg := Config{Maker: fifo.Maker, Procs: 2, InitialMsgs: 15}
	plans := []transport.FaultPlan{
		{}, // fault-free baseline (still on the live harness)
		{DropRate: 0.25, DupRate: 0.1},
	}
	cells, err := FaultMatrix(cfg, plans, 2, pred(t, "fifo"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	for i, cell := range cells {
		if cell.Runs != 2 {
			t.Fatalf("cell %d: runs = %d, want 2", i, cell.Runs)
		}
		if cell.Violations != 0 {
			t.Fatalf("cell %d: %d violations", i, cell.Violations)
		}
	}
	// The fault-free cell may see the odd spurious retransmit under a
	// slow scheduler, but no faults can have been injected.
	if cells[0].Stats.FaultsInjected != 0 {
		t.Fatalf("fault-free cell reports injected faults: %+v", cells[0].Stats)
	}
	if cells[1].Stats.Retransmits == 0 || cells[1].Stats.DupsDropped == 0 {
		t.Fatalf("lossy cell reports no transport work: %+v", cells[1].Stats)
	}
}

// TestPartitionedConformanceRun drives a workload across a healing
// partition: liveness must survive the cut.
func TestPartitionedConformanceRun(t *testing.T) {
	cfg := Config{Maker: causal.RSTMaker, Procs: 3, InitialMsgs: 20, Seed: 2}
	cfg.Faults = &transport.FaultPlan{
		Partitions: []transport.Partition{{
			A: []event.ProcID{0}, B: []event.ProcID{1, 2}, Heal: 12,
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.IsComplete() {
		t.Fatal("incomplete across a healed partition")
	}
	if m, bad := check.FindViolation(res.View, pred(t, "causal-b2")); bad {
		t.Fatalf("causal ordering violated: %s", m.String(pred(t, "causal-b2")))
	}
	if res.Stats.FaultsInjected == 0 {
		t.Fatal("partition drops must be counted as injected faults")
	}
}

// TestFaultFreeRunsAreDeterministic: without Faults the deterministic
// path is untouched — identical configs must yield byte-identical
// encoded views and zero transport counters.
func TestFaultFreeRunsAreDeterministic(t *testing.T) {
	cfg := chainCfg(causal.RSTMaker)
	cfg.Seed = 9
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := trace.EncodeUserView(a.View)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := trace.EncodeUserView(b.View)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatal("fault-free runs with the same seed must be byte-identical")
	}
	if a.Stats.Retransmits != 0 || a.Stats.DupsDropped != 0 || a.Stats.FaultsInjected != 0 {
		t.Fatalf("deterministic run reports transport work: %+v", a.Stats)
	}
}
