package conformance

import (
	"testing"

	"msgorder/internal/protocols/registry"
)

// churnProtocols adapts registry entries (the catalog plus the live
// handoff protocol) to the churn matrix input, predicates included.
func churnProtocols(names ...string) []ChurnProtocol {
	var out []ChurnProtocol
	for _, name := range names {
		e, ok := registry.ByName(name)
		if !ok {
			panic("unknown protocol " + name)
		}
		out = append(out, ChurnProtocol{Name: e.Name, Maker: e.Maker, Colors: e.Colors, Pred: e.Pred()})
	}
	return out
}

func assertChurnCells(t *testing.T, cells []ChurnCell, wantCells int) {
	t.Helper()
	if len(cells) != wantCells {
		t.Fatalf("matrix has %d cells, want %d", len(cells), wantCells)
	}
	for _, c := range cells {
		if !c.Match {
			t.Errorf("%s/%s/%s: surviving views diverge from sim\n sim: %s\nmesh: %s",
				c.Protocol, c.Op, c.Env, c.SimKey, c.MeshKey)
			continue
		}
		if c.SpecViolation {
			t.Errorf("%s/%s/%s: mesh view violates the protocol's spec", c.Protocol, c.Op, c.Env)
		}
		var wantEpoch uint64
		switch c.Op {
		case "join":
			wantEpoch = 2 // leave + join
		case "leave", "evict":
			wantEpoch = 1
		case "handoff":
			wantEpoch = 0 // same logical member, no view change
		}
		if c.Epoch != wantEpoch {
			t.Errorf("%s/%s/%s: epoch %d, want %d", c.Protocol, c.Op, c.Env, c.Epoch, wantEpoch)
		}
		if c.Op == "evict" && (len(c.Evicted) != 1 || c.Evicted[0] != 3-1) {
			t.Errorf("%s/%s/%s: evicted %v, want exactly the churned process",
				c.Protocol, c.Op, c.Env, c.Evicted)
		}
	}
}

// TestChurnMatrixSmoke runs one cheap protocol through every churn op
// under the clean environment — the fast gate that always runs.
func TestChurnMatrixSmoke(t *testing.T) {
	protos := churnProtocols("fifo")
	var cells []ChurnCell
	for _, op := range ChurnOps() {
		cell, err := runChurnCell(protos[0], ChurnConfig{WALDir: t.TempDir()}.withDefaults(), op, "clean")
		if err != nil {
			t.Fatalf("%s/clean: %v", op, err)
		}
		cells = append(cells, cell)
	}
	assertChurnCells(t, cells, len(ChurnOps()))
}

// TestChurnMatrixAllProtocolsAllCells is the membership acceptance
// gate: every catalog protocol plus the live §5 handoff protocol must
// survive every (op, env) churn cell — joiners byte-identical after
// state transfer, evictions exact, views matching the sim reference.
func TestChurnMatrixAllProtocolsAllCells(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second churn matrix")
	}
	names := make([]string, 0, len(registry.Catalog())+1)
	for _, e := range registry.Catalog() {
		names = append(names, e.Name)
	}
	names = append(names, "handoff")
	cells, err := ChurnMatrix(ChurnConfig{Seed: 3, WALDir: t.TempDir()}, churnProtocols(names...))
	if err != nil {
		t.Fatal(err)
	}
	assertChurnCells(t, cells, len(names)*len(ChurnOps())*len(ChurnEnvs()))
}

// TestChurnMatrixValidatesConfig pins the required-config errors.
func TestChurnMatrixValidatesConfig(t *testing.T) {
	if _, err := ChurnMatrix(ChurnConfig{}, nil); err == nil {
		t.Fatal("missing WALDir accepted")
	}
	if _, err := ChurnMatrix(ChurnConfig{Procs: 2, WALDir: t.TempDir()}, nil); err == nil {
		t.Fatal("2-process churn accepted (no survivors quorum)")
	}
}
