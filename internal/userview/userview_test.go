package userview

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"msgorder/internal/event"
)

// mk builds a message table with the given (from,to) pairs.
func mk(pairs ...[2]event.ProcID) []event.Message {
	msgs := make([]event.Message, len(pairs))
	for i, p := range pairs {
		msgs[i] = event.Message{ID: event.MsgID(i), From: p[0], To: p[1]}
	}
	return msgs
}

func s(m event.MsgID) event.Event { return event.E(m, event.Send) }
func d(m event.MsgID) event.Event { return event.E(m, event.Deliver) }

func mustRun(t *testing.T, msgs []event.Message, procs [][]event.Event) *Run {
	t.Helper()
	r, err := New(msgs, procs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

// fifoViolation: P0 sends m0 then m1 to P1; P1 delivers m1 first.
// In X_async but not X_co (and hence not X_sync).
func fifoViolation(t *testing.T) *Run {
	msgs := mk([2]event.ProcID{0, 1}, [2]event.ProcID{0, 1})
	return mustRun(t, msgs, [][]event.Event{
		{s(0), s(1)},
		{d(1), d(0)},
	})
}

// crown2: two crossing messages between P0 and P1.
// In X_co but not X_sync.
func crown2(t *testing.T) *Run {
	msgs := mk([2]event.ProcID{0, 1}, [2]event.ProcID{1, 0})
	return mustRun(t, msgs, [][]event.Event{
		{s(0), d(1)},
		{s(1), d(0)},
	})
}

// sequential: m0 P0->P1, then P1 sends m1 back. In X_sync.
func sequential(t *testing.T) *Run {
	msgs := mk([2]event.ProcID{0, 1}, [2]event.ProcID{1, 0})
	return mustRun(t, msgs, [][]event.Event{
		{s(0), d(1)},
		{d(0), s(1)},
	})
}

func TestValidationErrors(t *testing.T) {
	msgs := mk([2]event.ProcID{0, 1})
	cases := []struct {
		name  string
		msgs  []event.Message
		procs [][]event.Event
		want  error
	}{
		{
			name:  "bad message id",
			msgs:  []event.Message{{ID: 5, From: 0, To: 1}},
			procs: [][]event.Event{{}, {}},
			want:  ErrBadMessageID,
		},
		{
			name:  "wrong process",
			msgs:  msgs,
			procs: [][]event.Event{{d(0)}, {s(0)}}, // swapped
			want:  ErrWrongProcess,
		},
		{
			name:  "duplicate event",
			msgs:  msgs,
			procs: [][]event.Event{{s(0), s(0)}, {}},
			want:  ErrDuplicateEvent,
		},
		{
			name:  "unknown message",
			msgs:  msgs,
			procs: [][]event.Event{{s(7)}, {}},
			want:  ErrUnknownMessage,
		},
		{
			name:  "deliver without send",
			msgs:  msgs,
			procs: [][]event.Event{{}, {d(0)}},
			want:  ErrDeliverNoSend,
		},
		{
			name:  "non-user event",
			msgs:  msgs,
			procs: [][]event.Event{{event.E(0, event.Invoke)}, {}},
			want:  ErrNotUserEvent,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.msgs, c.procs); !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestCyclicRejected(t *testing.T) {
	// P0: m0.s after m1.r; P1: m1.s after m0.r — causality cycle.
	msgs := mk([2]event.ProcID{0, 1}, [2]event.ProcID{1, 0})
	_, err := New(msgs, [][]event.Event{
		{d(1), s(0)},
		{d(0), s(1)},
	})
	if !errors.Is(err, ErrCyclic) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

func TestBeforeBasics(t *testing.T) {
	r := sequential(t)
	if !r.Before(s(0), d(0)) {
		t.Error("m0.s must precede m0.r")
	}
	if !r.Before(s(0), d(1)) {
		t.Error("m0.s ▷ m1.r via m0.r, m1.s")
	}
	if r.Before(d(1), s(0)) {
		t.Error("no backward causality")
	}
	if r.Before(s(0), s(0)) {
		t.Error("▷ must be irreflexive")
	}
}

func TestConcurrent(t *testing.T) {
	r := crown2(t)
	if !r.Concurrent(s(0), s(1)) {
		t.Error("the two sends of a crown are concurrent")
	}
	if r.Concurrent(s(0), d(0)) {
		t.Error("ordered events are not concurrent")
	}
	if r.Concurrent(s(0), s(0)) {
		t.Error("an event is not concurrent with itself")
	}
}

func TestLimitSetMembership(t *testing.T) {
	cases := []struct {
		name                 string
		r                    *Run
		async, co, syncOrder bool
	}{
		{"fifoViolation", fifoViolation(t), true, false, false},
		{"crown2", crown2(t), true, true, false},
		{"sequential", sequential(t), true, true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.r.InAsync(); got != c.async {
				t.Errorf("InAsync = %v, want %v", got, c.async)
			}
			if got := c.r.InCO(); got != c.co {
				t.Errorf("InCO = %v, want %v", got, c.co)
			}
			if got := c.r.InSync(); got != c.syncOrder {
				t.Errorf("InSync = %v, want %v", got, c.syncOrder)
			}
		})
	}
}

func TestFindCOViolation(t *testing.T) {
	v, ok := fifoViolation(t).FindCOViolation()
	if !ok {
		t.Fatal("expected a CO violation")
	}
	if v.X != 0 || v.Y != 1 {
		t.Fatalf("violation = %+v, want X=0 Y=1", v)
	}
	if v.String() == "" {
		t.Error("empty violation string")
	}
	if _, ok := crown2(t).FindCOViolation(); ok {
		t.Error("crown2 is causally ordered")
	}
}

func TestFindCrown(t *testing.T) {
	crown, ok := crown2(t).FindCrown()
	if !ok {
		t.Fatal("expected a crown")
	}
	if len(crown) != 2 {
		t.Fatalf("crown = %v, want length 2", crown)
	}
	if _, ok := sequential(t).FindCrown(); ok {
		t.Error("sequential run has no crown")
	}
}

func TestSyncOrderWitness(t *testing.T) {
	r := sequential(t)
	order, ok := r.SyncOrder()
	if !ok {
		t.Fatal("sequential run must have a sync order")
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("order = %v, want [0 1]", order)
	}
	if _, ok := crown2(t).SyncOrder(); ok {
		t.Error("crown2 must not have a sync order")
	}
}

func TestIncompleteRun(t *testing.T) {
	msgs := mk([2]event.ProcID{0, 1})
	r := mustRun(t, msgs, [][]event.Event{{s(0)}, {}})
	if r.IsComplete() {
		t.Error("run with undelivered message is incomplete")
	}
	if r.InAsync() || r.InCO() || r.InSync() {
		t.Error("incomplete runs belong to no specification set")
	}
	if _, ok := r.SyncOrder(); ok {
		t.Error("incomplete run has no sync order")
	}
}

func TestAccessors(t *testing.T) {
	r := sequential(t)
	if r.NumMessages() != 2 || r.NumProcs() != 2 {
		t.Fatalf("size = (%d,%d), want (2,2)", r.NumMessages(), r.NumProcs())
	}
	if m := r.Message(0); m.From != 0 || m.To != 1 {
		t.Errorf("Message(0) = %v", m)
	}
	seq := r.ProcSeq(0)
	if len(seq) != 2 || seq[0] != s(0) {
		t.Errorf("ProcSeq(0) = %v", seq)
	}
	seq[0] = d(1) // must not alias internal state
	if r.ProcSeq(0)[0] != s(0) {
		t.Error("ProcSeq leaked internal slice")
	}
	msgs := r.Messages()
	msgs[0].From = 9
	if r.Message(0).From != 0 {
		t.Error("Messages leaked internal slice")
	}
	ids := r.SortMessages()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("SortMessages = %v", ids)
	}
}

func TestKeyDistinguishesRuns(t *testing.T) {
	a, b := crown2(t), sequential(t)
	if a.Key() == b.Key() {
		t.Error("different runs share a key")
	}
	c := crown2(t)
	if a.Key() != c.Key() {
		t.Error("identical runs have different keys")
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}

// randomCompleteRun builds a valid complete run by simulating a random
// schedule: at each step pick either an unsent message's send or an
// undelivered-but-sent message's deliver.
func randomCompleteRun(rng *rand.Rand, nProcs, nMsgs int) *Run {
	msgs := make([]event.Message, nMsgs)
	for i := range msgs {
		from := event.ProcID(rng.Intn(nProcs))
		to := event.ProcID(rng.Intn(nProcs))
		msgs[i] = event.Message{ID: event.MsgID(i), From: from, To: to}
	}
	procs := make([][]event.Event, nProcs)
	sent := make([]bool, nMsgs)
	delivered := make([]bool, nMsgs)
	for steps := 0; steps < 2*nMsgs; steps++ {
		var choices []event.Event
		for i := 0; i < nMsgs; i++ {
			if !sent[i] {
				choices = append(choices, event.E(event.MsgID(i), event.Send))
			} else if !delivered[i] {
				choices = append(choices, event.E(event.MsgID(i), event.Deliver))
			}
		}
		e := choices[rng.Intn(len(choices))]
		if e.Kind == event.Send {
			sent[e.Msg] = true
		} else {
			delivered[e.Msg] = true
		}
		p := e.Proc(msgs[e.Msg])
		procs[p] = append(procs[p], e)
	}
	r, err := New(msgs, procs)
	if err != nil {
		panic(err) // construction above is always valid
	}
	return r
}

func TestQuickLimitSetChain(t *testing.T) {
	// X_sync ⊆ X_co ⊆ X_async on random complete runs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomCompleteRun(rng, 2+rng.Intn(3), 1+rng.Intn(5))
		if r.InSync() && !r.InCO() {
			return false
		}
		if r.InCO() && !r.InAsync() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSyncOrderRespectsCausality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomCompleteRun(rng, 2+rng.Intn(3), 1+rng.Intn(5))
		order, ok := r.SyncOrder()
		if !ok {
			return true // not sync; nothing to check
		}
		pos := make(map[event.MsgID]int, len(order))
		for i, id := range order {
			pos[id] = i
		}
		kinds := []event.Kind{event.Send, event.Deliver}
		for _, x := range r.Messages() {
			for _, y := range r.Messages() {
				if x.ID == y.ID {
					continue
				}
				for _, hk := range kinds {
					for _, fk := range kinds {
						if r.Before(event.E(x.ID, hk), event.E(y.ID, fk)) && pos[x.ID] >= pos[y.ID] {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCrownIffNotSync(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomCompleteRun(rng, 2+rng.Intn(3), 2+rng.Intn(4))
		_, hasCrown := r.FindCrown()
		return hasCrown == !r.InSync()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
