package netmesh

import (
	"math/rand"
	"testing"
	"time"
)

// midpoint is the zero-jitter draw: next() returns backoff/2 + 0/2,
// so feeding rng ≡ 0 exposes the raw exponential schedule.
func zeroRNG(int64) int64 { return 0 }

// TestRedialerFirstAttemptImmediate checks a fresh cycle dials with no
// sleep at all.
func TestRedialerFirstAttemptImmediate(t *testing.T) {
	rd := redialer{base: time.Millisecond, max: 250 * time.Millisecond}
	if d := rd.next(zeroRNG); d != 0 {
		t.Fatalf("first attempt slept %v, want 0", d)
	}
	if d := rd.next(zeroRNG); d != time.Millisecond/2 {
		t.Fatalf("second attempt slept %v, want base/2", d)
	}
}

// TestRedialerGrowthCappedAtMax checks the exponential schedule stops
// at max/2 (zero jitter) and never overflows past the cap.
func TestRedialerGrowthCappedAtMax(t *testing.T) {
	rd := redialer{base: time.Millisecond, max: 8 * time.Millisecond}
	rd.next(zeroRNG) // attempt 1: immediate
	want := []time.Duration{
		time.Millisecond / 2, time.Millisecond, 2 * time.Millisecond,
		4 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond,
	}
	for i, w := range want {
		if d := rd.next(zeroRNG); d != w {
			t.Fatalf("attempt %d slept %v, want %v", i+2, d, w)
		}
	}
}

// TestRedialerResetsAfterSuccess is the thundering-herd regression
// test: after a successful handshake the next disconnect must restart
// the schedule at zero/base, not resume at the cap. The old code kept
// a per-sender dial tally that never reset, so a peer whose connection
// broke after a long session jumped straight to max backoff — and
// every such peer woke at the same capped interval.
func TestRedialerResetsAfterSuccess(t *testing.T) {
	rd := redialer{base: time.Millisecond, max: 250 * time.Millisecond}
	for i := 0; i < 20; i++ { // long flaky stretch: driven to the cap
		rd.next(zeroRNG)
	}
	if d := rd.next(zeroRNG); d != 125*time.Millisecond {
		t.Fatalf("pre-success backoff %v, want max/2", d)
	}
	rd.success()
	if d := rd.next(zeroRNG); d != 0 {
		t.Fatalf("first dial after success slept %v, want immediate", d)
	}
	if d := rd.next(zeroRNG); d != time.Millisecond/2 {
		t.Fatalf("second dial after success slept %v, want base/2 not max/2", d)
	}
}

// TestRedialerJitterDecorrelates checks distinct rng streams give
// distinct schedules, so a cohort of peers cut by the same fault does
// not redial in lockstep.
func TestRedialerJitterDecorrelates(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		rd := redialer{base: 4 * time.Millisecond, max: 256 * time.Millisecond}
		var out []time.Duration
		for i := 0; i < 8; i++ {
			out = append(out, rd.next(rng.Int63n))
		}
		return out
	}
	a, b := schedule(1), schedule(2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("two seeds produced identical jitter schedules")
	}
	// Jitter keeps every sleep within [backoff/2, backoff]: bounded
	// above, never below half — progress is still guaranteed.
	rng := rand.New(rand.NewSource(7))
	rd := redialer{base: 4 * time.Millisecond, max: 256 * time.Millisecond}
	rd.next(rng.Int63n)
	for i := 0; i < 16; i++ {
		backoff := 4 * time.Millisecond << uint(min(i, 6))
		if backoff > 256*time.Millisecond {
			backoff = 256 * time.Millisecond
		}
		d := rd.next(rng.Int63n)
		if d < backoff/2 || d > backoff {
			t.Fatalf("attempt %d slept %v, want within [%v, %v]", i+2, d, backoff/2, backoff)
		}
	}
}
