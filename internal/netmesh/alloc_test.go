//go:build !race

package netmesh

import (
	"bufio"
	"bytes"
	"testing"
	"time"

	"msgorder/internal/transport"
)

// TestSteadySendPathAllocationBudget is the allocation gate for the
// high-throughput path: once buffers are warm, encoding a batch with a
// pooled encoder, popping a batch from the outbox, and reading a frame
// off the wire must all be allocation-free. The test is excluded under
// -race because the detector's instrumentation allocates.
func TestSteadySendPathAllocationBudget(t *testing.T) {
	envs := batchEnvs(0, 32)

	enc := getEncoder()
	defer putEncoder(enc)
	var payload []byte
	if avg := testing.AllocsPerRun(200, func() {
		payload = encodeBatch(enc, envs)
	}); avg != 0 {
		t.Errorf("encodeBatch allocates %.1f per batch on the steady path, want 0", avg)
	}

	box := newOutbox()
	buf := make([]transport.Envelope, 0, len(envs))
	if avg := testing.AllocsPerRun(200, func() {
		for _, e := range envs {
			box.push(e)
		}
		buf, _ = box.popBatch(buf, len(envs), -1)
	}); avg != 0 {
		t.Errorf("outbox push/popBatch allocates %.1f per batch on the steady path, want 0", avg)
	}

	var frame bytes.Buffer
	if err := writeFrame(&frame, payload); err != nil {
		t.Fatal(err)
	}
	data := frame.Bytes()
	r := bytes.NewReader(data)
	br := bufio.NewReader(r)
	rbuf := make([]byte, 0, len(data))
	if avg := testing.AllocsPerRun(200, func() {
		r.Reset(data)
		br.Reset(r)
		p, err := readFrameInto(br, rbuf)
		if err != nil {
			t.Fatal(err)
		}
		rbuf = p
	}); avg != 0 {
		t.Errorf("readFrameInto allocates %.1f per frame on the steady path, want 0", avg)
	}
}

// TestWALGroupCommitAmortizesWrites is exercised in internal/crash; the
// netmesh-side budget here is the timer path of popBatch: arming and
// stopping the flush-window timer every batch costs a couple of
// allocations, so the window is only armed when a batch is actually
// short. A full batch must stay on the zero-alloc fast path.
func TestFullBatchAvoidsWindowTimer(t *testing.T) {
	box := newOutbox()
	envs := batchEnvs(0, 16)
	buf := make([]transport.Envelope, 0, len(envs))
	if avg := testing.AllocsPerRun(200, func() {
		for _, e := range envs {
			box.push(e)
		}
		buf, _ = box.popBatch(buf, len(envs), time.Hour)
	}); avg != 0 {
		t.Errorf("full-batch popBatch with a window armed allocates %.1f, want 0", avg)
	}
}
