package netmesh

import (
	"sync/atomic"
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/transport"
)

// TestPartitionedChannelDoesNotHOLBlock runs two logical channels over
// one mesh connection: a "lame" channel whose 0→1 direction is cut by a
// channel-scoped one-way partition (so its reliable sublayer retransmits
// forever) and a "healthy" channel that sends 1000 messages. With
// per-channel outbox queues and round-robin batch fill, the lame
// channel's standing retransmission backlog must not head-of-line-block
// the healthy channel: all 1000 messages must deliver within a budget
// derived from the flush window, and no lame envelope may leak through
// the cut.
func TestPartitionedChannelDoesNotHOLBlock(t *testing.T) {
	const (
		lame    = uint32(7)
		healthy = uint32(9)
		lameN   = 256
		msgs    = 1000
	)
	addrs := freePorts(t, 2)
	fp := Fingerprint("holtest", "spec", 2)

	in := transport.NewInjector(transport.FaultPlan{Seed: 7})
	in.CutChanOneWay([]event.ProcID{0}, []event.ProcID{1}, lame, -1)

	tcfg := transport.Config{RTO: 2 * time.Millisecond, MaxRTO: 10 * time.Millisecond}

	// Receiver (proc 1): dedup healthy traffic through its own reliable
	// sublayer, count deliveries, ack back over the mesh. Lame envelopes
	// reaching it mean the channel-scoped cut leaked.
	var delivered atomic.Int64
	var leaked atomic.Int64
	rx := transport.NewReliable(tcfg, func(transport.Envelope) {})
	defer rx.Close()
	var mesh1 *Mesh
	mesh1, err := NewMesh(MeshConfig{Self: 1, Addrs: addrs, Fingerprint: fp, Seed: 2},
		func(envs []transport.Envelope) {
			for _, e := range envs {
				if e.Kind != transport.Data {
					continue
				}
				if e.Chan == lame {
					leaked.Add(1)
					continue
				}
				if rx.Accept(e) {
					delivered.Add(1)
				}
				a := rx.CumAckFor(e)
				a.Chan = e.Chan
				mesh1.Send(a)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	defer mesh1.Close()

	// Sender (proc 0): one reliable instance per channel, each stamping
	// its channel ID in the send hook so retransmissions carry it too.
	var mesh0 *Mesh
	var trLame, trHealthy *transport.Reliable
	mesh0, err = NewMesh(MeshConfig{Self: 0, Addrs: addrs, Fingerprint: fp, Seed: 1, Injector: in},
		func(envs []transport.Envelope) {
			for _, e := range envs {
				if e.Kind != transport.Ack {
					continue
				}
				switch e.Chan {
				case lame:
					trLame.Ack(e)
				case healthy:
					trHealthy.Ack(e)
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	defer mesh0.Close()
	trLame = transport.NewReliable(tcfg, func(e transport.Envelope) {
		e.Chan = lame
		mesh0.Send(e)
	})
	defer trLame.Close()
	trHealthy = transport.NewReliable(tcfg, func(e transport.Envelope) {
		e.Chan = healthy
		mesh0.Send(e)
	})
	defer trHealthy.Close()

	// Build the lame backlog first: every envelope is dropped at the cut
	// and retransmitted every few milliseconds for the whole test, so the
	// shared outbox always has lame traffic competing for batch slots.
	for i := 0; i < lameN; i++ {
		w := protocol.Wire{From: 0, To: 1, Kind: protocol.UserWire, Msg: event.MsgID(i)}
		e := trLame.Wrap(0, 1, w)
		e.Chan = lame
		mesh0.Send(e)
	}

	// Now the healthy load.
	for i := 0; i < msgs; i++ {
		w := protocol.Wire{From: 0, To: 1, Kind: protocol.UserWire, Msg: event.MsgID(lameN + i)}
		e := trHealthy.Wrap(0, 1, w)
		e.Chan = healthy
		mesh0.Send(e)
	}

	// Budget: 1000 messages fill ~16 max-size batch frames; even if every
	// frame lingered its full 100µs flush window and every envelope needed
	// a retransmission round, the run completes in tens of milliseconds.
	// 3s of slack covers dial/scheduler noise while still failing fast on
	// genuine head-of-line blocking (the lame backlog never drains, so a
	// starved channel would never finish).
	deadline := time.Now().Add(3 * time.Second)
	for delivered.Load() < msgs {
		if time.Now().After(deadline) {
			t.Fatalf("healthy channel delivered %d/%d within budget (lame backlog pending=%d)",
				delivered.Load(), msgs, trLame.Pending())
		}
		time.Sleep(time.Millisecond)
	}
	if got := rx.CumFor(transport.Envelope{Src: 0, Dst: 1}); got != msgs {
		t.Fatalf("healthy contiguous high-water mark = %d, want %d", got, msgs)
	}
	if n := leaked.Load(); n != 0 {
		t.Fatalf("%d lame envelopes leaked through the channel-scoped cut", n)
	}
	if p := trLame.Pending(); p != lameN {
		t.Fatalf("lame pending = %d, want all %d unacked", p, lameN)
	}
}
