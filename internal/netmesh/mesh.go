// Package netmesh is the real-socket peer mesh: it carries the live
// harness's transport.Envelope stream over length-prefixed TCP framing,
// one OS-level connection per ordered peer pair. The paper's protocols
// and the reliable sublayer above them are network-agnostic — a wire
// goes in at the source, an envelope comes out at the destination — so
// the mesh slots in exactly where the in-memory adversary used to sit:
//
//	protocol → transport.Reliable → Mesh (TCP) → transport.Reliable → protocol
//
// Each Mesh runs one listener plus one supervised dialer per peer.
// Connections open with a handshake exchanging process IDs and a
// protocol/spec fingerprint; mismatched peers are refused with a reject
// frame, which stops the dialer's retry loop (a mesh of mixed protocol
// builds would corrupt the run, not just slow it). Lost connections are
// redialed with seeded, jittered exponential backoff. Send is
// fire-and-forget: an envelope on a broken connection is simply lost,
// and transport.Reliable retransmits it — the same contract the
// in-memory fault injector provides, which is also why an optional
// *transport.Injector can sit on the outbound path and drop, duplicate
// or delay frames on a real socket. Close drains every peer outbox
// before tearing the connections down.
//
// Many logical channels can share each connection (internal/chanmux):
// envelopes carry a channel ID (transport.Envelope.Chan), the per-peer
// outbox keeps one FIFO per channel and drains them round-robin into
// shared batch frames, so a blocked or retransmitting channel cannot
// head-of-line-block a sibling channel's traffic. Un-multiplexed
// deployments use channel 0 throughout and behave exactly as before.
package netmesh

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/obs"
	"msgorder/internal/transport"
)

// MeshConfig configures one process's endpoint of the mesh.
type MeshConfig struct {
	// Self is this process's id; Addrs[Self] is its listen address.
	Self event.ProcID
	// Addrs lists every process's address, indexed by ProcID. Entry
	// Self may use port 0; Addr() reports the bound address.
	Addrs []string
	// Fingerprint identifies the protocol/spec build this process runs.
	// Peers presenting a different fingerprint are refused.
	Fingerprint string
	// Seed drives the reconnect jitter (default 1).
	Seed int64
	// DialBackoff and MaxDialBackoff bound the reconnect backoff
	// (defaults 2ms and 250ms).
	DialBackoff, MaxDialBackoff time.Duration
	// DrainTimeout bounds how long Close waits for outboxes to flush
	// (default 2s).
	DrainTimeout time.Duration
	// MaxBatch bounds the envelopes coalesced into one batch frame
	// (default 64, capped at the codec's frame limit).
	MaxBatch int
	// FlushWindow is how long a sender lingers after the first queued
	// envelope to coalesce more into the same batch frame. Zero means
	// the default 100µs; negative disables the wait entirely (every
	// batch is whatever is already queued).
	FlushWindow time.Duration
	// Injector, when non-nil, applies seeded drop/duplicate/delay faults
	// to outbound envelopes — the in-memory adversary's fault interface
	// on a real socket. transport.Reliable above recovers.
	Injector *transport.Injector
	// Obs, when non-nil, receives mesh counters and trace records.
	Obs *obs.Sink
}

func (c MeshConfig) withDefaults() MeshConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 2 * time.Millisecond
	}
	if c.MaxDialBackoff <= 0 {
		c.MaxDialBackoff = 250 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 2 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxBatch > maxBatch {
		c.MaxBatch = maxBatch
	}
	if c.FlushWindow == 0 {
		c.FlushWindow = 100 * time.Microsecond
	}
	return c
}

// Counters tallies one mesh endpoint's socket work.
type Counters struct {
	// Accepted counts inbound connections that passed the handshake.
	Accepted int
	// Dials counts outbound connection attempts (including redials).
	Dials int
	// Redials counts dials after the first per peer — connection churn.
	Redials int
	// Rejects counts handshakes refused, in either direction.
	Rejects int
	// FramesIn / FramesOut count decoded and written envelope frames
	// (a batch frame counts once).
	FramesIn, FramesOut int
	// EnvelopesIn / EnvelopesOut count envelopes carried by those
	// frames; EnvelopesOut/FramesOut is the achieved batching factor.
	EnvelopesIn, EnvelopesOut int
	// Batches counts outbound frames that coalesced ≥ 2 envelopes.
	Batches int
	// BytesIn / BytesOut count envelope frame payload bytes.
	BytesIn, BytesOut int
	// FaultsInjected counts outbound envelopes the injector dropped,
	// duplicated or delayed.
	FaultsInjected int
}

// ErrRejected reports a peer refusing our handshake (or vice versa):
// the two endpoints disagree on the protocol/spec fingerprint or the
// mesh shape, and the dialer must not keep retrying.
var ErrRejected = errors.New("netmesh: handshake rejected")

// chanq is one logical channel's FIFO inside an outbox. head is the
// pop cursor: popBatch consumes from head and compacts the backing
// array afterwards, so steady-state traffic reuses the same slice.
type chanq struct {
	q    []transport.Envelope
	head int
}

// len returns the queued (unconsumed) envelope count.
func (c *chanq) len() int { return len(c.q) - c.head }

// outbox is an unbounded per-peer queue so mesh senders never block the
// protocol handler that is enqueueing. Internally it keeps one FIFO per
// multiplexed channel (envelopes are segregated by Envelope.Chan) and
// popBatch drains them round-robin, one envelope per turn — so a
// channel with a deep backlog (say, a partitioned channel's
// retransmissions) cannot head-of-line-block a sibling channel's
// traffic on the same connection. Un-multiplexed deployments only ever
// queue channel 0 and see the exact legacy FIFO behavior.
type outbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	// chans maps channel ID → its FIFO; order is the round-robin scan
	// order (append-only: a channel keeps its queue for the life of the
	// outbox); rr is the round-robin cursor into order.
	chans  map[uint32]*chanq
	order  []uint32
	rr     int
	total  int
	closed bool
	// Flush-window timer lifecycle. timer is the currently armed window
	// timer (nil when none); timerGen invalidates in-flight AfterFunc
	// callbacks that lost the race with Stop — a stale callback from a
	// previous window must not mark the next window expired, or that
	// window would flush immediately instead of lingering. close() stops
	// the armed timer so a closed outbox never keeps one scheduled.
	timer    *time.Timer
	timerGen uint64
	expired  bool
	// beats counts queued heartbeat envelopes. Beats coalesce: a beat
	// pushed while one is already queued is dropped, so a partitioned
	// peer's outbox holds at most one stale beat instead of growing
	// without bound for the life of the cut.
	beats int
}

func newOutbox() *outbox {
	b := &outbox{chans: make(map[uint32]*chanq)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *outbox) push(e transport.Envelope) {
	b.mu.Lock()
	if !b.closed {
		if e.Kind == transport.Beat {
			if b.beats > 0 {
				b.mu.Unlock()
				return // coalesce: one pending beat per peer is enough
			}
			b.beats++
		}
		cq := b.chans[e.Chan]
		if cq == nil {
			cq = &chanq{}
			b.chans[e.Chan] = cq
			b.order = append(b.order, e.Chan)
		}
		cq.q = append(cq.q, e)
		b.total++
	}
	b.mu.Unlock()
	b.cond.Signal()
}

// popBatch blocks until at least one envelope is queued (or the outbox
// closes), then lingers up to window for more to coalesce, and moves up
// to max envelopes into buf (reusing its capacity). Envelopes are taken
// round-robin across the queued channels — per-channel FIFO order is
// preserved, cross-channel order is fairness, not arrival. The second
// result is false only when the outbox is closed and drained.
func (b *outbox) popBatch(buf []transport.Envelope, max int, window time.Duration) ([]transport.Envelope, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.total == 0 && !b.closed {
		b.cond.Wait()
	}
	if b.total == 0 {
		return buf[:0], false
	}
	if window > 0 && b.total < max && !b.closed {
		gen := b.timerGen
		b.expired = false
		b.timer = time.AfterFunc(window, func() {
			b.mu.Lock()
			if b.timerGen == gen {
				b.expired = true
			}
			b.mu.Unlock()
			b.cond.Broadcast()
		})
		for b.total < max && !b.closed && !b.expired {
			b.cond.Wait()
		}
		// Retire this window: bump the generation so a callback that
		// already fired but hasn't run can't expire a future window, and
		// disarm the timer (close() may have done both already).
		b.timerGen++
		b.expired = false
		if b.timer != nil {
			b.timer.Stop()
			b.timer = nil
		}
	}
	n := b.total
	if n > max {
		n = max
	}
	buf = buf[:0]
	for taken := 0; taken < n; {
		cq := b.chans[b.order[b.rr%len(b.order)]]
		b.rr++
		if cq.head >= len(cq.q) {
			continue // this channel is drained; probe the next
		}
		e := cq.q[cq.head]
		cq.head++
		if e.Kind == transport.Beat {
			b.beats--
		}
		buf = append(buf, e)
		taken++
	}
	b.total -= n
	// Compact each touched queue in place so the backing arrays keep
	// being reused instead of creeping forward and re-allocating.
	for _, id := range b.order {
		cq := b.chans[id]
		if cq.head > 0 {
			m := copy(cq.q, cq.q[cq.head:])
			cq.q = cq.q[:m]
			cq.head = 0
		}
	}
	return buf, true
}

func (b *outbox) close() {
	b.mu.Lock()
	b.closed = true
	b.timerGen++
	t := b.timer
	b.timer = nil
	b.mu.Unlock()
	if t != nil {
		t.Stop()
	}
	b.cond.Broadcast()
}

// empty reports whether nothing is queued.
func (b *outbox) empty() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total == 0
}

// flushable reports whether the outbox holds envelopes worth waiting
// for at Close. Queued heartbeats don't count: a beat that hasn't
// reached its peer is stale the moment the mesh starts closing, so an
// unreachable peer's beat residue must not stall shutdown for the
// full drain timeout.
func (b *outbox) flushable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total > b.beats
}

// Mesh is one process's endpoint of the peer mesh. NewMesh starts the
// listener and one supervised sender per peer; Close drains and stops
// them.
type Mesh struct {
	cfg MeshConfig
	ln  net.Listener
	rcv func([]transport.Envelope)

	mu       sync.Mutex
	rng      *rand.Rand
	counts   Counters
	rejected error // first fingerprint refusal observed
	// conns tracks accepted connections so Close can unblock their
	// readers (the remote end may outlive us).
	conns map[net.Conn]struct{}

	boxes map[event.ProcID]*outbox

	closing chan struct{}
	once    sync.Once
	wg      sync.WaitGroup // senders + accept loop
	connWG  sync.WaitGroup // per-connection readers
}

// NewMesh binds cfg.Addrs[cfg.Self] and starts the peer senders.
// Arriving envelopes addressed to Self are handed to rcv in arrival
// batches (one batch per decoded frame), one goroutine per inbound
// connection; rcv must be concurrency-safe and non-blocking (hand off
// to a queue), and it owns the slice it is given.
func NewMesh(cfg MeshConfig, rcv func([]transport.Envelope)) (*Mesh, error) {
	cfg = cfg.withDefaults()
	if int(cfg.Self) < 0 || int(cfg.Self) >= len(cfg.Addrs) {
		return nil, fmt.Errorf("netmesh: self %d outside %d-address mesh", cfg.Self, len(cfg.Addrs))
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Self])
	if err != nil {
		return nil, fmt.Errorf("netmesh: listen: %w", err)
	}
	m := &Mesh{
		cfg:     cfg,
		ln:      ln,
		rcv:     rcv,
		rng:     rand.New(rand.NewSource(cfg.Seed*0x9e3779b9 + int64(cfg.Self))),
		conns:   make(map[net.Conn]struct{}),
		boxes:   make(map[event.ProcID]*outbox),
		closing: make(chan struct{}),
	}
	for p := range cfg.Addrs {
		if event.ProcID(p) == cfg.Self {
			continue
		}
		box := newOutbox()
		m.boxes[event.ProcID(p)] = box
		m.wg.Add(1)
		go m.runSender(event.ProcID(p), box)
	}
	m.wg.Add(1)
	go m.runAccept()
	return m, nil
}

// Addr returns the listener's bound address (useful with port 0).
func (m *Mesh) Addr() string { return m.ln.Addr().String() }

// Counters returns a snapshot of the socket tallies.
func (m *Mesh) Counters() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts
}

// Rejected returns the first handshake refusal observed, if any: a
// non-nil result means some peer runs a different protocol/spec build
// and the mesh will never fully form.
func (m *Mesh) Rejected() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejected
}

// Send queues an envelope for its destination. It never blocks; on a
// dead connection the envelope is lost and the reliable sublayer above
// retransmits. Envelopes addressed to Self loop back without a socket.
func (m *Mesh) Send(e transport.Envelope) {
	if e.Dst == m.cfg.Self {
		m.rcv([]transport.Envelope{e})
		return
	}
	box, ok := m.boxes[e.Dst]
	if !ok {
		return // outside the mesh: drop, as a lossy network would
	}
	box.push(e)
}

// Close drains every outbox (bounded by DrainTimeout), then stops the
// senders, the listener, and the inbound readers.
func (m *Mesh) Close() error {
	m.once.Do(func() {
		deadline := time.Now().Add(m.cfg.DrainTimeout)
		for _, box := range m.boxes {
			for box.flushable() && time.Now().Before(deadline) {
				time.Sleep(500 * time.Microsecond)
			}
		}
		close(m.closing)
		for _, box := range m.boxes {
			box.close()
		}
		m.ln.Close()
		m.wg.Wait()
		m.mu.Lock()
		for c := range m.conns {
			c.Close()
		}
		m.mu.Unlock()
		m.connWG.Wait()
	})
	return nil
}

func (m *Mesh) closed() bool {
	select {
	case <-m.closing:
		return true
	default:
		return false
	}
}

// count applies f to the counters under the lock.
func (m *Mesh) count(f func(*Counters)) {
	m.mu.Lock()
	f(&m.counts)
	m.mu.Unlock()
}

// trace emits one mesh lifecycle note.
func (m *Mesh) trace(op obs.Op, note string) {
	if s := m.cfg.Obs; s.Enabled() {
		s.Trace(obs.Record{
			Step: s.Step(), Proc: m.cfg.Self, Op: op, Msg: obs.NoMsg, Note: note,
		})
	}
}

// runAccept owns the listener: every inbound connection gets a
// handshake check and, on success, a reader goroutine.
func (m *Mesh) runAccept() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.connWG.Add(1)
		go m.serveConn(conn)
	}
}

// serveConn validates one inbound connection's handshake and then
// decodes envelope frames until the stream breaks.
func (m *Mesh) serveConn(conn net.Conn) {
	defer m.connWG.Done()
	defer conn.Close()
	m.mu.Lock()
	m.conns[conn] = struct{}{}
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.conns, conn)
		m.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	payload, err := readFrame(br)
	if err != nil {
		return
	}
	h, err := decodeHello(payload)
	if err != nil {
		writeFrame(conn, encodeReject("bad hello frame"))
		m.count(func(c *Counters) { c.Rejects++ })
		return
	}
	if reason := m.vetPeer(h); reason != "" {
		writeFrame(conn, encodeReject(reason))
		m.count(func(c *Counters) { c.Rejects++ })
		m.trace(obs.OpDrop, fmt.Sprintf("refused P%d: %s", h.Proc, reason))
		return
	}
	if err := writeFrame(conn, encodeWelcome()); err != nil {
		return
	}
	m.count(func(c *Counters) { c.Accepted++ })
	m.cfg.Obs.Count("netmesh.accepted", 1)
	var rbuf []byte // reused across frames; decoders copy out of it
	for {
		payload, err := readFrameInto(br, rbuf)
		if err != nil {
			return
		}
		rbuf = payload
		var envs []transport.Envelope
		switch {
		case len(payload) > 0 && payload[0] == frameBatch:
			envs, err = decodeBatch(payload)
		default:
			var e transport.Envelope
			if e, err = decodeEnvelope(payload); err == nil {
				envs = []transport.Envelope{e}
			}
		}
		if err != nil {
			m.trace(obs.OpDrop, fmt.Sprintf("corrupt frame from P%d: %v", h.Proc, err))
			return
		}
		// Misrouted envelopes are dropped, as the unbatched path did.
		kept := envs[:0]
		for _, e := range envs {
			if e.Dst == m.cfg.Self {
				kept = append(kept, e)
			}
		}
		m.count(func(c *Counters) {
			c.FramesIn++
			c.EnvelopesIn += len(kept)
			c.BytesIn += len(payload)
		})
		if len(kept) > 0 {
			m.rcv(kept)
		}
	}
}

// vetPeer checks a dialer's hello against our own shape; a non-empty
// result is the refusal reason.
func (m *Mesh) vetPeer(h hello) string {
	switch {
	case h.N != len(m.cfg.Addrs):
		return fmt.Sprintf("mesh size %d, want %d", h.N, len(m.cfg.Addrs))
	case int(h.Proc) < 0 || int(h.Proc) >= len(m.cfg.Addrs) || h.Proc == m.cfg.Self:
		return fmt.Sprintf("bad peer id %d", h.Proc)
	case h.Fingerprint != m.cfg.Fingerprint:
		return fmt.Sprintf("fingerprint %q, want %q", h.Fingerprint, m.cfg.Fingerprint)
	}
	return ""
}

// runSender supervises the connection to one peer: dial with seeded
// jittered backoff, handshake, then coalesce the outbox into batch
// frames until the connection breaks, and start over. Envelopes in
// flight on a broken connection are lost by design — the reliable
// sublayer retransmits.
func (m *Mesh) runSender(peer event.ProcID, box *outbox) {
	defer m.wg.Done()
	var conn net.Conn
	var bw *bufio.Writer
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	rd := redialer{base: m.cfg.DialBackoff, max: m.cfg.MaxDialBackoff}
	totalDials := 0
	var batch []transport.Envelope // reused pop buffer
	enc := getEncoder()
	defer putEncoder(enc)
	for {
		var ok bool
		batch, ok = box.popBatch(batch, m.cfg.MaxBatch, m.cfg.FlushWindow)
		if !ok {
			return // mesh closing
		}
		// Apply injector faults per envelope, compacting in place;
		// duplicates and delays re-enter via the outbox.
		kept := batch[:0]
		for i := range batch {
			if m.decideFaults(&batch[i], box) {
				kept = append(kept, batch[i])
			}
		}
		if len(kept) == 0 {
			continue
		}
		for conn == nil {
			if m.closed() {
				return
			}
			if totalDials > 0 {
				m.count(func(c *Counters) { c.Redials++ })
			}
			c, err := m.dial(peer, rd.next(m.jitter))
			totalDials++
			if err != nil {
				if errors.Is(err, ErrRejected) {
					m.mu.Lock()
					if m.rejected == nil {
						m.rejected = fmt.Errorf("%w: peer P%d: %v", ErrRejected, peer, err)
					}
					m.mu.Unlock()
					return // incompatible build: retrying cannot help
				}
				continue // backoff already applied inside dial
			}
			conn = c
			bw = bufio.NewWriter(conn)
			rd.success()
		}
		payload := encodeBatch(enc, kept)
		err := writeFrame(bw, payload)
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			conn.Close()
			conn, bw = nil, nil
			continue // batch lost; Reliable retransmits
		}
		m.count(func(c *Counters) {
			c.FramesOut++
			c.EnvelopesOut += len(kept)
			if len(kept) > 1 {
				c.Batches++
			}
			c.BytesOut += len(payload)
		})
	}
}

// decideFaults runs the optional injector on one outbound envelope.
// It reports whether the envelope should be written now; duplicates
// and delays are re-queued on the outbox.
func (m *Mesh) decideFaults(e *transport.Envelope, box *outbox) bool {
	in := m.cfg.Injector
	if in == nil {
		return true
	}
	switch in.DecideChan(e.Src, e.Dst, e.Chan) {
	case transport.Drop:
		m.count(func(c *Counters) { c.FaultsInjected++ })
		return false
	case transport.Duplicate:
		m.count(func(c *Counters) { c.FaultsInjected++ })
		box.push(*e)
		return true
	case transport.Delay:
		m.count(func(c *Counters) { c.FaultsInjected++ })
		// Requeue behind whatever is waiting; if the outbox is empty the
		// envelope goes right back out, which is a no-op delay.
		box.push(*e)
		return false
	default:
		return true
	}
}

// redialer computes the per-peer reconnect schedule: exponential
// growth from base, capped at max, reset to zero after a successful
// handshake. Keeping the attempt counter here (instead of a running
// dial tally in runSender) is what makes a reconnect after a
// long-lived connection breaks start back at the base backoff rather
// than the cap — the old tally never reset, so every peer that had
// ever redialed piled up at max backoff and reconnected in lockstep.
type redialer struct {
	base, max time.Duration
	attempt   int
}

// next returns how long to sleep before the upcoming dial attempt:
// zero for the first attempt of a (re)connect cycle, then a jittered
// exponential backoff. rng draws a uniform value in [0, n).
func (d *redialer) next(rng func(n int64) int64) time.Duration {
	d.attempt++
	if d.attempt == 1 {
		return 0
	}
	backoff := d.base << uint(min(d.attempt-2, 16))
	if backoff > d.max {
		backoff = d.max
	}
	jitter := time.Duration(rng(int64(backoff) + 1))
	return backoff/2 + jitter/2
}

// success resets the schedule after a completed handshake so the next
// disconnect starts a fresh cycle at the base backoff.
func (d *redialer) success() { d.attempt = 0 }

// jitter draws a uniform value in [0, n) from the mesh's seeded rng.
func (m *Mesh) jitter(n int64) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rng.Int63n(n)
}

// dial opens, handshakes and vets one connection to peer, sleeping
// delay first (the redialer hands attempt 0 a zero delay).
func (m *Mesh) dial(peer event.ProcID, delay time.Duration) (net.Conn, error) {
	if delay > 0 {
		select {
		case <-m.closing:
			return nil, errors.New("netmesh: closing")
		case <-time.After(delay):
		}
	}
	m.count(func(c *Counters) { c.Dials++ })
	conn, err := net.DialTimeout("tcp", m.cfg.Addrs[peer], time.Second)
	if err != nil {
		return nil, err
	}
	h := hello{Proc: m.cfg.Self, N: len(m.cfg.Addrs), Fingerprint: m.cfg.Fingerprint}
	if err := writeFrame(conn, encodeHello(h)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	payload, err := readFrame(br)
	if err != nil {
		conn.Close()
		return nil, err
	}
	switch {
	case len(payload) > 0 && payload[0] == frameWelcome:
		m.cfg.Obs.Count("netmesh.dialed", 1)
		return conn, nil
	case len(payload) > 0 && payload[0] == frameReject:
		conn.Close()
		m.count(func(c *Counters) { c.Rejects++ })
		return nil, fmt.Errorf("%w: %s", ErrRejected, decodeReject(payload))
	default:
		conn.Close()
		return nil, errCorruptFrame
	}
}
