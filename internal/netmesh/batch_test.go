package netmesh

import (
	"bufio"
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/tagless"
	"msgorder/internal/transport"
)

// batchEnvs builds a distinctive envelope run so aliasing bugs show up
// as value corruption, not just crashes.
func batchEnvs(src, n int) []transport.Envelope {
	envs := make([]transport.Envelope, n)
	for i := range envs {
		envs[i] = transport.Envelope{
			Src: event.ProcID(src), Dst: 1, Kind: transport.Data, Seq: uint64(src*1000 + i + 1),
			Wire: protocol.Wire{From: event.ProcID(src), To: 1, Kind: protocol.UserWire,
				Msg: event.MsgID(i), Tag: []byte(fmt.Sprintf("tag-%d-%d", src, i)),
				VC: []uint64{uint64(src), uint64(i)}},
		}
	}
	return envs
}

func TestBatchCodecRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64} {
		envs := batchEnvs(3, n)
		envs[0].Cum = 41 // exercise the pipelined-ack field through the batch path
		enc := getEncoder()
		payload := encodeBatch(enc, envs)
		got, err := decodeBatch(payload)
		putEncoder(enc)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(got, envs) {
			t.Fatalf("n=%d: round trip = %+v, want %+v", n, got, envs)
		}
	}
}

func TestDecodeBatchRejectsCorrupt(t *testing.T) {
	enc := getEncoder()
	defer putEncoder(enc)
	good := append([]byte(nil), encodeBatch(enc, batchEnvs(0, 3))...)
	cases := [][]byte{
		nil,
		{frameBatch},                         // no count
		{frameEnvelope, 1},                   // wrong kind
		good[:len(good)-1],                   // truncated body
		append(append([]byte{}, good...), 9), // trailing junk
	}
	// A batch whose count exceeds maxBatch must be refused before any
	// allocation is attempted.
	enc2 := getEncoder()
	enc2.Reset()
	enc2.Byte(frameBatch)
	enc2.Int(maxBatch + 1)
	cases = append(cases, append([]byte(nil), enc2.Out()...))
	putEncoder(enc2)
	// So must a zero or negative count.
	enc3 := getEncoder()
	enc3.Reset()
	enc3.Byte(frameBatch)
	enc3.Int(0)
	cases = append(cases, append([]byte(nil), enc3.Out()...))
	putEncoder(enc3)
	for i, b := range cases {
		if _, err := decodeBatch(b); err == nil {
			t.Fatalf("case %d: decodeBatch accepted corrupt input %v", i, b)
		}
	}
}

// TestFlushWindowExpiryFlushesSingleEnvelope pins the flush-window
// liveness property: a lone queued envelope must not wait for MaxBatch
// company — the window timer expires and the batch of one goes out.
func TestFlushWindowExpiryFlushesSingleEnvelope(t *testing.T) {
	box := newOutbox()
	box.push(transport.Envelope{Seq: 7})
	const window = 10 * time.Millisecond
	start := time.Now()
	got, ok := box.popBatch(nil, 64, window)
	elapsed := time.Since(start)
	if !ok || len(got) != 1 || got[0].Seq != 7 {
		t.Fatalf("popBatch = %v, %v", got, ok)
	}
	if elapsed < window {
		t.Fatalf("popBatch returned after %v, before the %v window expired", elapsed, window)
	}
	if elapsed > time.Second {
		t.Fatalf("popBatch blocked %v: window expiry did not fire", elapsed)
	}
	if !box.empty() {
		t.Fatal("outbox not drained")
	}
}

// TestPopBatchFullBatchSkipsWindow checks the early exit: once MaxBatch
// envelopes are queued, popBatch must not linger for the window.
func TestPopBatchFullBatchSkipsWindow(t *testing.T) {
	box := newOutbox()
	for i := 0; i < 4; i++ {
		box.push(transport.Envelope{Seq: uint64(i + 1)})
	}
	start := time.Now()
	got, ok := box.popBatch(nil, 4, time.Hour)
	if !ok || len(got) != 4 {
		t.Fatalf("popBatch = %v, %v", got, ok)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("full batch still waited %v", elapsed)
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("batch out of order: %v", got)
		}
	}
}

// TestPopBatchNegativeWindowNoWait: FlushWindow < 0 disables the linger
// entirely — the batch is whatever is already queued.
func TestPopBatchNegativeWindowNoWait(t *testing.T) {
	box := newOutbox()
	box.push(transport.Envelope{Seq: 1})
	box.push(transport.Envelope{Seq: 2})
	got, ok := box.popBatch(nil, 64, -1)
	if !ok || len(got) != 2 {
		t.Fatalf("popBatch = %v, %v", got, ok)
	}
}

// TestPopBatchClosedDrains: close with a queued envelope must still hand
// it out before reporting the outbox dead.
func TestPopBatchClosedDrains(t *testing.T) {
	box := newOutbox()
	box.push(transport.Envelope{Seq: 1})
	box.close()
	if got, ok := box.popBatch(nil, 64, time.Hour); !ok || len(got) != 1 {
		t.Fatalf("popBatch after close = %v, %v", got, ok)
	}
	if _, ok := box.popBatch(nil, 64, time.Hour); ok {
		t.Fatal("drained closed outbox still reported live")
	}
}

// TestBatchSplitAcrossReconnect kills the receiving mesh endpoint
// mid-stream and restarts it on the same address: the sender must
// redial, and batches queued across the break must reach the new
// incarnation (in-flight envelopes at the break are lost by design —
// the reliable sublayer above retransmits).
func TestBatchSplitAcrossReconnect(t *testing.T) {
	addrs := freePorts(t, 2)
	var mu sync.Mutex
	seen := map[uint64]bool{}
	rcv := func(envs []transport.Envelope) {
		mu.Lock()
		for _, e := range envs {
			seen[e.Seq] = true
		}
		mu.Unlock()
	}
	const fp = "reconnect-test"
	recv, err := NewMesh(MeshConfig{Self: 1, Addrs: addrs, Fingerprint: fp}, rcv)
	if err != nil {
		t.Fatal(err)
	}
	send, err := NewMesh(MeshConfig{Self: 0, Addrs: addrs, Fingerprint: fp,
		DrainTimeout: 50 * time.Millisecond}, func([]transport.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	sendUntil := func(from uint64, arrived func() bool) uint64 {
		deadline := time.Now().Add(15 * time.Second)
		seq := from
		for !arrived() {
			if time.Now().After(deadline) {
				t.Fatalf("nothing arrived by seq %d", seq)
			}
			seq++
			send.Send(transport.Envelope{Src: 0, Dst: 1, Kind: transport.Data, Seq: seq})
			time.Sleep(time.Millisecond)
		}
		return seq
	}
	has := func(lo uint64) func() bool {
		return func() bool {
			mu.Lock()
			defer mu.Unlock()
			for s := range seen {
				if s > lo {
					return true
				}
			}
			return false
		}
	}
	last := sendUntil(0, has(0))
	recv.Close()

	// Restart the receiver on the same address; the port was just freed,
	// but give the OS a few tries to hand it back.
	var recv2 *Mesh
	for i := 0; i < 100; i++ {
		if recv2, err = NewMesh(MeshConfig{Self: 1, Addrs: addrs, Fingerprint: fp}, rcv); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("receiver could not rebind %s: %v", addrs[1], err)
	}
	defer recv2.Close()

	sendUntil(last+1000, has(last+1000))
	if c := send.Counters(); c.Redials == 0 {
		t.Fatalf("sender never redialed across the break: %+v", c)
	}
}

// TestAckPipelineDedupAfterDuplicatedBatch replays a whole data batch
// at the receiving node: the duplicate must be absorbed (no second
// delivery), re-acknowledged cumulatively, and the receiver's
// high-water mark must cover the batch so the seen-set stays pruned.
// The batch also arrives with a gap first, so the exact-ack fallback
// for sequence numbers above the cumulative mark is exercised too.
func TestAckPipelineDedupAfterDuplicatedBatch(t *testing.T) {
	nodes := startMeshNodes(t, 2, tagless.Maker, nil)
	mk := func(seq uint64, id event.MsgID) transport.Envelope {
		return transport.Envelope{Src: 0, Dst: 1, Kind: transport.Data, Seq: seq,
			Wire: protocol.Wire{From: 0, To: 1, Kind: protocol.UserWire, Msg: id}}
	}
	inject := func(envs ...transport.Envelope) {
		nodes[1].q.push(nodeItem{kind: itemBatch, envs: envs})
	}

	// A batch with a gap: seqs 2,3 arrive before 1. The cumulative mark
	// cannot advance, so both need exact acks; deliveries still happen.
	inject(mk(2, 1), mk(3, 2))
	if err := nodes[1].WaitDeliveries(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if cum := nodes[1].tr.CumFor(mk(2, 1)); cum != 0 {
		t.Fatalf("cum advanced over a gap: %d", cum)
	}
	// The gap fills: cum jumps over the whole contiguous run.
	inject(mk(1, 0))
	if err := nodes[1].WaitDeliveries(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if cum := nodes[1].tr.CumFor(mk(1, 0)); cum != 3 {
		t.Fatalf("cum = %d after gap filled, want 3", cum)
	}

	// The duplicated batch: all three seqs again in one frame.
	inject(mk(1, 0), mk(2, 1), mk(3, 2))
	deadline := time.Now().Add(5 * time.Second)
	for nodes[1].TransportCounters().DupsDropped < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("dups dropped = %d, want 3", nodes[1].TransportCounters().DupsDropped)
		}
		time.Sleep(time.Millisecond)
	}
	if got := nodes[1].Deliveries(); len(got) != 3 {
		t.Fatalf("duplicated batch re-delivered: %v", got)
	}
	// The duplicate batch must still be re-acknowledged (the original
	// acks may have been lost): the sender side sees ack traffic.
	deadline = time.Now().Add(5 * time.Second)
	for nodes[0].TransportCounters().AcksReceived == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no acks reached the sender side")
		}
		time.Sleep(time.Millisecond)
	}
	if err := nodes[1].Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCodecPoolNeverAliasesDecodedEnvelopes is the -race soak for the
// pooled-buffer path: many goroutines check encoders out, encode,
// decode, return the encoder, and only then verify the decoded
// envelopes — if decodeBatch left anything aliasing the pooled buffer,
// a concurrent reuse corrupts it and the comparison (or the race
// detector) fails.
func TestCodecPoolNeverAliasesDecodedEnvelopes(t *testing.T) {
	const goroutines, rounds = 8, 300
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var prev []transport.Envelope
			var prevWant []transport.Envelope
			for i := 0; i < rounds; i++ {
				want := batchEnvs(g, 1+i%9)
				enc := getEncoder()
				payload := encodeBatch(enc, want)
				got, err := decodeBatch(payload)
				putEncoder(enc) // encoder back in the pool before we look at got
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs <- fmt.Errorf("g%d round %d: decoded batch corrupted", g, i)
					return
				}
				// The previous round's decode must survive this round's
				// pool reuse untouched.
				if prev != nil && !reflect.DeepEqual(prev, prevWant) {
					errs <- fmt.Errorf("g%d round %d: earlier decode mutated by pool reuse", g, i)
					return
				}
				prev, prevWant = got, want
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := CodecPoolStats(); st.Gets == 0 {
		t.Fatal("pool counters never moved")
	}
}

// TestReadFrameIntoReusesBuffer checks the frame reader's reuse
// contract: consecutive frames land in the same backing array, and the
// decoded envelopes survive the buffer being overwritten.
func TestReadFrameIntoReusesBuffer(t *testing.T) {
	var net bytes.Buffer
	first := batchEnvs(1, 4)
	second := batchEnvs(2, 4)
	enc := getEncoder()
	if err := writeFrame(&net, encodeBatch(enc, first)); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&net, encodeBatch(enc, second)); err != nil {
		t.Fatal(err)
	}
	putEncoder(enc)
	br := bufio.NewReader(&net)
	buf, err := readFrameInto(br, make([]byte, 0, 1<<10))
	if err != nil {
		t.Fatal(err)
	}
	got1, err := decodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := readFrameInto(br, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &buf[0] != &buf2[0] {
		t.Error("second frame did not reuse the read buffer")
	}
	got2, err := decodeBatch(buf2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got1, first) {
		t.Fatal("first decode corrupted by buffer reuse")
	}
	if !reflect.DeepEqual(got2, second) {
		t.Fatal("second decode wrong")
	}
}
