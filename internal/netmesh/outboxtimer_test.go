package netmesh

import (
	"testing"
	"time"

	"msgorder/internal/transport"
)

func timerEnv(seq uint64) transport.Envelope {
	return transport.Envelope{Src: 0, Dst: 1, Kind: transport.Data, Seq: seq}
}

// TestCloseDuringArmedWindowStopsTimer is the regression test for the
// flush-window timer lifecycle: close() arriving while popBatch lingers
// in an armed window must return the partial batch promptly AND leave
// no timer scheduled on the closed outbox.
func TestCloseDuringArmedWindowStopsTimer(t *testing.T) {
	b := newOutbox()
	b.push(timerEnv(1))
	done := make(chan int, 1)
	go func() {
		batch, ok := b.popBatch(nil, 64, time.Hour)
		if !ok {
			done <- -1
			return
		}
		done <- len(batch)
	}()
	// Let popBatch take the single envelope and arm the hour-long window.
	deadline := time.Now().Add(2 * time.Second)
	for {
		b.mu.Lock()
		armed := b.timer != nil
		b.mu.Unlock()
		if armed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("window timer never armed")
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.close()
	select {
	case n := <-done:
		if n != 1 {
			t.Fatalf("popBatch returned %d envelopes, want the partial batch of 1", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("popBatch did not return after close during an armed window")
	}
	b.mu.Lock()
	leftover := b.timer
	b.mu.Unlock()
	if leftover != nil {
		t.Fatal("closed outbox still holds an armed window timer")
	}
	if _, ok := b.popBatch(nil, 64, time.Hour); ok {
		t.Fatal("drained closed outbox reported live")
	}
}

// TestRetiredWindowTimerCannotExpireNextWindow hammers the Stop/fire
// race: timers from retired windows may still fire after their window
// ended, and the generation check must keep them from expiring a later
// window early.
func TestRetiredWindowTimerCannotExpireNextWindow(t *testing.T) {
	b := newOutbox()
	// Retire many short windows; some of their timers fire concurrently
	// with the Stop on the wait-loop exit path.
	for i := 0; i < 200; i++ {
		b.push(timerEnv(uint64(i)))
		if _, ok := b.popBatch(nil, 4, 20*time.Microsecond); !ok {
			t.Fatal("outbox reported dead during warmup")
		}
	}
	// A long window now: any stale fire landing here must be ignored, so
	// popBatch keeps lingering until the batch actually fills.
	b.push(timerEnv(1000))
	done := make(chan int, 1)
	go func() {
		batch, _ := b.popBatch(nil, 2, time.Hour)
		done <- len(batch)
	}()
	// Give every stale timer ample time to fire into the armed window.
	time.Sleep(20 * time.Millisecond)
	select {
	case n := <-done:
		t.Fatalf("window flushed %d envelope(s) early — a retired timer expired it", n)
	default:
	}
	b.push(timerEnv(1001))
	select {
	case n := <-done:
		if n != 2 {
			t.Fatalf("window flushed %d envelopes, want the full batch of 2", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("popBatch never returned after the batch filled")
	}
	b.close()
}
