package netmesh

import (
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/tagless"
	"msgorder/internal/transport"
	"msgorder/internal/userview"
)

func TestEnvelopeCodecRoundTrip(t *testing.T) {
	cases := []transport.Envelope{
		{Src: 0, Dst: 1, Kind: transport.Data, Seq: 1,
			Wire: protocol.Wire{From: 0, To: 1, Kind: protocol.UserWire, Msg: 0}},
		{Src: 2, Dst: 0, Kind: transport.Ack, Seq: 129, Cum: 127},
		{Src: 1, Dst: 2, Kind: transport.Data, Seq: 1 << 40, Attempt: 7,
			Wire: protocol.Wire{From: 1, To: 2, Kind: protocol.ControlWire, Ctrl: 3,
				Tag: []byte{0, 255, 1, 2}, VC: []uint64{9, 0, 1 << 50}}},
		{Src: 0, Dst: 2, Kind: transport.Data, Seq: 2,
			Wire: protocol.Wire{From: 0, To: 2, Kind: protocol.UserWire, Msg: 41,
				Color: event.ColorRed, Tag: []byte("piggyback")}},
	}
	for i, e := range cases {
		got, err := decodeEnvelope(encodeEnvelope(e))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("case %d: round trip = %+v, want %+v", i, got, e)
		}
	}
}

func TestCodecRejectsCorruptFrames(t *testing.T) {
	good := encodeEnvelope(transport.Envelope{Src: 0, Dst: 1, Kind: transport.Data, Seq: 1})
	for _, b := range [][]byte{nil, {0}, {frameEnvelope}, good[:len(good)-1], append(append([]byte{}, good...), 9)} {
		if _, err := decodeEnvelope(b); err == nil {
			t.Fatalf("decodeEnvelope(%v) accepted corrupt input", b)
		}
	}
	if _, err := decodeHello(encodeEnvelope(transport.Envelope{})); err == nil {
		t.Fatal("decodeHello accepted an envelope frame")
	}
	h := hello{Proc: 2, N: 3, Fingerprint: Fingerprint("causal-rst", "causal-b2", 3)}
	got, err := decodeHello(encodeHello(h))
	if err != nil || got != h {
		t.Fatalf("hello round trip = %+v, %v", got, err)
	}
}

// freePorts reserves n distinct loopback TCP addresses by binding and
// immediately releasing them (racy in theory, fine for tests).
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		m, err := NewMesh(MeshConfig{Self: 0, Addrs: []string{"127.0.0.1:0"}}, func([]transport.Envelope) {})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = m.Addr()
		m.Close()
	}
	return addrs
}

// startMeshNodes is the canonical test constructor: pre-pick ports so
// every node knows every address up front.
func startMeshNodes(t *testing.T, n int, maker protocol.Maker, mutate func(i int, cfg *NodeConfig)) []*Node {
	t.Helper()
	addrs := freePorts(t, n)
	fp := Fingerprint("test", "spec", n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		cfg := NodeConfig{
			Self:  event.ProcID(i),
			Procs: n,
			Maker: maker,
			Mesh:  MeshConfig{Addrs: addrs, Fingerprint: fp, Seed: int64(i + 1)},
			Transport: transport.Config{
				RTO: 2 * time.Millisecond, MaxRTO: 30 * time.Millisecond,
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
	}
	return nodes
}

// lockstep invokes each message in turn and waits for its delivery at
// the destination before moving on, so the run's user view is fully
// determined by the message list.
func lockstep(t *testing.T, nodes []*Node, msgs []event.Message, perMsg time.Duration) {
	t.Helper()
	want := make([]int, len(nodes))
	for i, node := range nodes {
		want[i] = len(node.Deliveries())
	}
	for _, m := range msgs {
		if err := nodes[m.From].Invoke(m); err != nil {
			t.Fatalf("invoke m%d: %v", m.ID, err)
		}
		want[m.To]++
		if err := nodes[m.To].WaitDeliveries(want[m.To], perMsg); err != nil {
			t.Fatalf("waiting for m%d: %v", m.ID, err)
		}
	}
}

// seededMsgs builds a deterministic unicast workload over n processes.
func seededMsgs(seed int64, n, count int) []event.Message {
	rng := rand.New(rand.NewSource(seed))
	msgs := make([]event.Message, count)
	for i := range msgs {
		from := event.ProcID(rng.Intn(n))
		to := event.ProcID(rng.Intn(n))
		for to == from {
			to = event.ProcID(rng.Intn(n))
		}
		msgs[i] = event.Message{ID: event.MsgID(i), From: from, To: to}
	}
	return msgs
}

// meshView assembles the run's user view from the nodes' local logs.
func meshView(t *testing.T, nodes []*Node, msgs []event.Message) *userview.Run {
	t.Helper()
	procs := make([][]event.Event, len(nodes))
	for i, node := range nodes {
		procs[i] = node.Events()
	}
	v, err := userview.New(msgs, procs)
	if err != nil {
		t.Fatalf("mesh run invalid: %v", err)
	}
	return v
}

func TestThreeNodeCausalLockstep(t *testing.T) {
	nodes := startMeshNodes(t, 3, causal.RSTMaker, nil)
	msgs := seededMsgs(7, 3, 15)
	lockstep(t, nodes, msgs, 5*time.Second)
	v := meshView(t, nodes, msgs)
	if !v.IsComplete() {
		t.Fatal("view incomplete after lockstep run")
	}
	if !v.InCO() {
		t.Fatal("causal protocol produced a non-causal view over TCP")
	}
	for _, node := range nodes {
		if err := node.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLossyMeshStillDeliversExactlyOnce(t *testing.T) {
	inj := transport.NewInjector(transport.FaultPlan{DropRate: 0.25, DupRate: 0.15, Seed: 11})
	nodes := startMeshNodes(t, 3, tagless.Maker, func(i int, cfg *NodeConfig) {
		cfg.Mesh.Injector = inj
	})
	msgs := seededMsgs(13, 3, 30)
	lockstep(t, nodes, msgs, 10*time.Second)
	meshView(t, nodes, msgs) // validates exactly-once (duplicate events fail)
	var retransmits, faults int
	for _, node := range nodes {
		s := node.Stats()
		retransmits += s.Retransmits
	}
	faults = inj.Counters().Total()
	if faults == 0 {
		t.Fatal("injector injected nothing — the lossy cell tested nothing")
	}
	if retransmits == 0 {
		t.Fatal("no retransmissions despite drops: reliable sublayer not engaged")
	}
}

func TestCrashRestartOnMesh(t *testing.T) {
	dir := t.TempDir()
	nodes := startMeshNodes(t, 3, causal.RSTMaker, func(i int, cfg *NodeConfig) {
		cfg.WALPath = filepath.Join(dir, "p"+string(rune('0'+i))+".wal")
		cfg.SnapshotEvery = 6
	})
	msgs := seededMsgs(23, 3, 24)
	mid := len(msgs) / 2
	lockstep(t, nodes, msgs[:mid], 5*time.Second)
	if err := nodes[1].Crash(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	lockstep(t, nodes, msgs[mid:], 10*time.Second)
	v := meshView(t, nodes, msgs)
	if !v.IsComplete() {
		t.Fatal("crash-restart run lost messages")
	}
	if !v.InCO() {
		t.Fatal("causal order broken across the restart")
	}
	s := nodes[1].Stats()
	if s.Crashes != 1 || s.Recoveries != 1 {
		t.Fatalf("crashes/recoveries = %d/%d, want 1/1", s.Crashes, s.Recoveries)
	}
	for _, node := range nodes {
		if err := node.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHandshakeRefusesMismatchedFingerprint(t *testing.T) {
	addrs := freePorts(t, 2)
	good, err := NewNode(NodeConfig{Self: 0, Procs: 2, Maker: tagless.Maker,
		Mesh: MeshConfig{Addrs: addrs, Fingerprint: Fingerprint("tagless", "", 2)}})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	bad, err := NewNode(NodeConfig{Self: 1, Procs: 2, Maker: causal.RSTMaker,
		Mesh: MeshConfig{Addrs: addrs, Fingerprint: Fingerprint("causal-rst", "causal-b2", 2)}})
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	// The mismatched node tries to send; the handshake must be refused
	// and surface as a rejection, not retry forever.
	if err := bad.Invoke(event.Message{ID: 0, From: 1, To: 0}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if bad.Err() != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := bad.Err(); !errors.Is(err, ErrRejected) {
		t.Fatalf("mismatched peer error = %v, want ErrRejected", err)
	}
	if got := good.Deliveries(); len(got) != 0 {
		t.Fatalf("mismatched peer delivered %v", got)
	}
}

func TestMeshCountersAndIdleSkips(t *testing.T) {
	reg := obs.NewRegistry()
	nodes := startMeshNodes(t, 2, tagless.Maker, func(i int, cfg *NodeConfig) {
		if i == 0 {
			cfg.Metrics = reg
		}
	})
	msgs := []event.Message{{ID: 0, From: 0, To: 1}, {ID: 1, From: 1, To: 0}}
	lockstep(t, nodes, msgs, 5*time.Second)
	mc := nodes[0].MeshCounters()
	if mc.FramesOut == 0 || mc.FramesIn == 0 {
		t.Fatalf("no frames moved: %+v", mc)
	}
	if mc.BytesOut == 0 || mc.BytesIn == 0 {
		t.Fatalf("no bytes counted: %+v", mc)
	}
	// The idle-skip satellite: after the messages settle, the transport
	// loop parks; both the counter and the metric must show it.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if nodes[0].TransportCounters().IdleSkips > 0 &&
			reg.Counter("transport.retransmit.idle_skips") > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("idle skips not observed: counters=%+v metric=%d",
		nodes[0].TransportCounters(), reg.Counter("transport.retransmit.idle_skips"))
}
