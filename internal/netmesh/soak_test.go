package netmesh

import (
	"math/rand"
	"testing"
	"time"

	"msgorder/internal/check"
	"msgorder/internal/event"
	"msgorder/internal/protocols/registry"
	"msgorder/internal/transport"
	"msgorder/internal/userview"
)

// TestSoakAllProtocolsLossyWithCrash is the satellite soak: every
// catalog protocol runs 3 processes over real loopback TCP, 200
// pipelined messages under seeded loss, with one crash-restart
// mid-stream. Afterwards the assembled run must be a valid complete
// user view (userview.New rejects duplicate events, so this checks
// exactly-once delivery) that satisfies the protocol's specification.
func TestSoakAllProtocolsLossyWithCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second socket soak")
	}
	const (
		procs = 3
		count = 200
	)
	for _, entry := range registry.Catalog() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			t.Parallel()
			inj := transport.NewInjector(transport.FaultPlan{
				DropRate: 0.15, DupRate: 0.08, DelayJitter: 0.05, Seed: 31,
			})
			nodes := startMeshNodes(t, procs, entry.Maker, func(i int, cfg *NodeConfig) {
				cfg.Mesh.Injector = inj
				cfg.SnapshotEvery = 32
			})

			rng := rand.New(rand.NewSource(97))
			msgs := make([]event.Message, count)
			for i := range msgs {
				from := event.ProcID(rng.Intn(procs))
				to := event.ProcID(rng.Intn(procs))
				for to == from {
					to = event.ProcID(rng.Intn(procs))
				}
				var color event.Color
				if len(entry.Colors) > 0 {
					color = entry.Colors[rng.Intn(len(entry.Colors))]
				}
				msgs[i] = event.Message{ID: event.MsgID(i), From: from, To: to, Color: color}
			}

			// Pipelined firehose with one crash-restart a third in. P0
			// is the sync protocols' coordinator, so the crash targets a
			// worker, matching the E11 convention.
			for i, m := range msgs {
				if i == count/3 {
					if err := nodes[1].Crash(15 * time.Millisecond); err != nil {
						t.Fatal(err)
					}
				}
				if err := nodes[m.From].Invoke(m); err != nil {
					t.Fatalf("invoke m%d: %v", m.ID, err)
				}
			}

			want := make([]int, procs)
			for _, m := range msgs {
				want[m.To]++
			}
			for p, node := range nodes {
				if err := node.WaitDeliveries(want[p], 60*time.Second); err != nil {
					t.Fatalf("P%d: %v (stats %+v)", p, err, node.Stats())
				}
			}
			for p, node := range nodes {
				if err := node.Err(); err != nil {
					t.Fatalf("P%d failed: %v", p, err)
				}
			}

			procEvents := make([][]event.Event, procs)
			for i, node := range nodes {
				procEvents[i] = node.Events()
			}
			v, err := userview.New(msgs, procEvents)
			if err != nil {
				t.Fatalf("run invalid (exactly-once broken?): %v", err)
			}
			if !v.IsComplete() {
				t.Fatal("incomplete view after all waits succeeded")
			}
			if pred := entry.Pred(); pred != nil {
				if m, found := check.FindViolation(v, pred); found {
					t.Fatalf("spec %s violated: %s", entry.Spec, m.String(pred))
				}
			}

			s := nodes[1].Stats()
			if s.Crashes != 1 || s.Recoveries != 1 {
				t.Fatalf("crashes/recoveries = %d/%d, want 1/1", s.Crashes, s.Recoveries)
			}
			if inj.Counters().Total() == 0 {
				t.Fatal("no faults injected: the soak exercised nothing")
			}
			var retr int
			for _, node := range nodes {
				retr += node.TransportCounters().Retransmits
			}
			if retr == 0 {
				t.Fatal("no retransmissions under 15% loss")
			}
			t.Logf("%s: %d msgs, faults=%d retransmits=%d replayed=%d",
				entry.Name, count, inj.Counters().Total(), retr, s.ReplayedEvents)
		})
	}
}

// TestSoakViewsAreValidPrefixes guards the assembled-run plumbing
// itself: a tiny two-node exchange must produce per-process event logs
// that line up with the message table.
func TestSoakViewsAreValidPrefixes(t *testing.T) {
	nodes := startMeshNodes(t, 2, registry.Catalog()[0].Maker, nil)
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1}, {ID: 1, From: 1, To: 0}, {ID: 2, From: 0, To: 1},
	}
	lockstep(t, nodes, msgs, 5*time.Second)
	v := meshView(t, nodes, msgs)
	for p := 0; p < 2; p++ {
		seq := v.ProcSeq(event.ProcID(p))
		if len(seq) == 0 {
			t.Fatalf("P%d recorded nothing", p)
		}
		for _, e := range seq {
			if !e.Kind.UserVisible() {
				t.Fatalf("P%d logged non-user event %v", p, e)
			}
		}
	}
	if !v.IsComplete() {
		t.Fatal("unexpected incomplete view")
	}
}
