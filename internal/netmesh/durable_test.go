package netmesh

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/transport"
	"msgorder/internal/userview"
)

// TestDurableRestartAcrossProcessReincarnation is the regression test
// for the crash-restart cum-ack bug: a node closed and reopened on the
// same WALPath (the OS-process restart path) must come back with its
// transport state intact. Before the fix, the reincarnation's sender
// counters reset to zero — the peer dropped every new send as a
// duplicate — and its receiver high-water marks regressed, re-delivering
// wires the previous incarnation had already accepted. Either failure
// mode breaks the exactly-once check below: resets time out waiting for
// deliveries, regressions produce duplicate events userview.New rejects.
func TestDurableRestartAcrossProcessReincarnation(t *testing.T) {
	dir := t.TempDir()
	addrs := freePorts(t, 2)
	fp := Fingerprint("causal-rst", "spec", 2)
	mkCfg := func(i int) NodeConfig {
		return NodeConfig{
			Self:  event.ProcID(i),
			Procs: 2,
			Maker: causal.RSTMaker,
			Mesh:  MeshConfig{Addrs: addrs, Fingerprint: fp, Seed: int64(i + 1)},
			Transport: transport.Config{
				RTO: 2 * time.Millisecond, MaxRTO: 30 * time.Millisecond,
			},
			WALPath:       filepath.Join(dir, fmt.Sprintf("p%d.wal", i)),
			SnapshotEvery: 4,
		}
	}
	n0, err := NewNode(mkCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	n1, err := NewNode(mkCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()

	msgs := seededMsgs(31, 2, 20)
	mid := len(msgs) / 2
	lockstep(t, []*Node{n0, n1}, msgs[:mid], 5*time.Second)

	// Reincarnate process 0: full Close (mesh listener torn down), then
	// a fresh Node on the same WAL path and port.
	ev0 := n0.Events()
	if err := n0.Close(); err != nil {
		t.Fatal(err)
	}
	n0b, err := NewNode(mkCfg(0))
	if err != nil {
		t.Fatalf("reincarnation failed to boot: %v", err)
	}
	defer n0b.Close()
	if s := n0b.Stats(); s.Recoveries != 1 {
		t.Fatalf("boot restore stats = %+v, want 1 recovery", s)
	}

	lockstep(t, []*Node{n0b, n1}, msgs[mid:], 10*time.Second)

	// Exactly-once across both incarnations: process 0's local order is
	// incarnation 1's events followed by incarnation 2's.
	procs := [][]event.Event{
		append(append([]event.Event(nil), ev0...), n0b.Events()...),
		n1.Events(),
	}
	v, err := userview.New(msgs, procs)
	if err != nil {
		t.Fatalf("restart broke exactly-once: %v", err)
	}
	if !v.IsComplete() {
		t.Fatal("messages lost across the durable restart")
	}
	if !v.InCO() {
		t.Fatal("causal order broken across the durable restart")
	}
	for _, node := range []*Node{n0b, n1} {
		if err := node.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBootOnFreshWALIsNotARecovery pins down that a first boot on an
// empty (or absent) WAL file takes the plain Init path.
func TestBootOnFreshWALIsNotARecovery(t *testing.T) {
	dir := t.TempDir()
	nodes := startMeshNodes(t, 2, causal.RSTMaker, func(i int, cfg *NodeConfig) {
		cfg.WALPath = filepath.Join(dir, fmt.Sprintf("p%d.wal", i))
	})
	if s := nodes[0].Stats(); s.Recoveries != 0 {
		t.Fatalf("fresh boot counted %d recoveries", s.Recoveries)
	}
	lockstep(t, nodes, seededMsgs(5, 2, 4), 5*time.Second)
}
