// Wire format for the peer mesh: length-prefixed frames over a TCP
// stream. Every frame is a uvarint byte length followed by a payload
// whose first byte is the frame kind. Payload fields use the same
// varint conventions as internal/snapio, so the codec stays dependency-
// free and deterministic. The envelope encoding carries every field of
// transport.Envelope including the protocol wire's observability
// vector-clock stamp (Wire.VC), so causal traces keep working across
// OS processes.
package netmesh

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/snapio"
	"msgorder/internal/transport"
)

// Frame kinds.
const (
	frameHello    byte = 1 // handshake: who am I, what am I running
	frameWelcome  byte = 2 // handshake accepted by the listener
	frameReject   byte = 3 // handshake refused (fingerprint/id mismatch)
	frameEnvelope byte = 4 // one transport.Envelope
)

// maxFrame bounds a frame payload; anything larger is treated as a
// corrupt stream and the connection is dropped.
const maxFrame = 1 << 20

// helloMagic opens every handshake payload so a stray client speaking
// the wrong protocol is refused immediately.
const helloMagic = "momesh1"

// errCorruptFrame reports a malformed frame payload.
var errCorruptFrame = errors.New("netmesh: corrupt frame")

// hello is the handshake exchanged on every new connection: the dialer
// sends it, the listener validates and answers with welcome or reject.
type hello struct {
	Proc        event.ProcID
	N           int
	Fingerprint string
}

// writeFrame sends one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("netmesh: frame of %d bytes exceeds limit", len(payload))
	}
	hdr := binary.AppendUvarint(nil, uint64(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d-byte frame", errCorruptFrame, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// encodeHello builds a hello frame payload.
func encodeHello(h hello) []byte {
	var w snapio.Writer
	w.Byte(frameHello)
	w.Bytes([]byte(helloMagic))
	w.Int(int(h.Proc))
	w.Int(h.N)
	w.Bytes([]byte(h.Fingerprint))
	return w.Out()
}

// decodeHello parses a hello frame payload (kind byte included).
func decodeHello(b []byte) (hello, error) {
	r := snapio.NewReader(b)
	if r.Byte() != frameHello {
		return hello{}, errCorruptFrame
	}
	if string(r.Bytes()) != helloMagic {
		return hello{}, fmt.Errorf("%w: bad magic", errCorruptFrame)
	}
	h := hello{
		Proc: event.ProcID(r.Int()),
		N:    r.Int(),
	}
	h.Fingerprint = string(r.Bytes())
	if err := r.Close(); err != nil {
		return hello{}, err
	}
	return h, nil
}

// encodeWelcome builds the listener's handshake acceptance frame.
func encodeWelcome() []byte { return []byte{frameWelcome} }

// encodeReject builds a reject frame carrying the refusal reason.
func encodeReject(reason string) []byte {
	var w snapio.Writer
	w.Byte(frameReject)
	w.Bytes([]byte(reason))
	return w.Out()
}

// decodeReject extracts the refusal reason from a reject frame,
// tolerating corruption (the connection is dying anyway).
func decodeReject(b []byte) string {
	r := snapio.NewReader(b)
	if r.Byte() != frameReject {
		return "unreadable reject"
	}
	reason := string(r.Bytes())
	if r.Err() != nil || reason == "" {
		return "unreadable reject"
	}
	return reason
}

// encodeEnvelope builds an envelope frame payload.
func encodeEnvelope(e transport.Envelope) []byte {
	var w snapio.Writer
	w.Byte(frameEnvelope)
	w.Int(int(e.Src))
	w.Int(int(e.Dst))
	w.Byte(byte(e.Kind))
	w.U64(e.Seq)
	w.Int(e.Attempt)
	w.Int(int(e.Wire.From))
	w.Int(int(e.Wire.To))
	w.Byte(byte(e.Wire.Kind))
	w.Int(int(e.Wire.Msg))
	w.Byte(byte(e.Wire.Color))
	w.Byte(e.Wire.Ctrl)
	w.Bytes(e.Wire.Tag)
	w.Int(len(e.Wire.VC))
	for _, c := range e.Wire.VC {
		w.U64(c)
	}
	return w.Out()
}

// decodeEnvelope parses an envelope frame payload (kind byte included).
func decodeEnvelope(b []byte) (transport.Envelope, error) {
	r := snapio.NewReader(b)
	if r.Byte() != frameEnvelope {
		return transport.Envelope{}, errCorruptFrame
	}
	var e transport.Envelope
	e.Src = event.ProcID(r.Int())
	e.Dst = event.ProcID(r.Int())
	e.Kind = transport.Kind(r.Byte())
	e.Seq = r.U64()
	e.Attempt = r.Int()
	e.Wire.From = event.ProcID(r.Int())
	e.Wire.To = event.ProcID(r.Int())
	e.Wire.Kind = protocol.WireKind(r.Byte())
	e.Wire.Msg = event.MsgID(r.Int())
	e.Wire.Color = event.Color(r.Byte())
	e.Wire.Ctrl = r.Byte()
	e.Wire.Tag = r.Bytes()
	if n := r.Int(); n > 0 {
		if n > maxFrame {
			return transport.Envelope{}, errCorruptFrame
		}
		e.Wire.VC = make([]uint64, n)
		for i := range e.Wire.VC {
			e.Wire.VC[i] = r.U64()
		}
	}
	if err := r.Close(); err != nil {
		return transport.Envelope{}, err
	}
	return e, nil
}
