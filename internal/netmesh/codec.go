// Wire format for the peer mesh: length-prefixed frames over a TCP
// stream. Every frame is a uvarint byte length followed by a payload
// whose first byte is the frame kind. Payload fields use the same
// varint conventions as internal/snapio, so the codec stays dependency-
// free and deterministic. The envelope encoding carries every field of
// transport.Envelope including the protocol wire's observability
// vector-clock stamp (Wire.VC), so causal traces keep working across
// OS processes.
package netmesh

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/snapio"
	"msgorder/internal/transport"
)

// Frame kinds.
const (
	frameHello    byte = 1 // handshake: who am I, what am I running
	frameWelcome  byte = 2 // handshake accepted by the listener
	frameReject   byte = 3 // handshake refused (fingerprint/id mismatch)
	frameEnvelope byte = 4 // one transport.Envelope
	frameBatch    byte = 5 // a count-prefixed run of transport.Envelopes
)

// maxFrame bounds a frame payload; anything larger is treated as a
// corrupt stream and the connection is dropped.
const maxFrame = 1 << 20

// helloMagic opens every handshake payload so a stray client speaking
// the wrong protocol is refused immediately. Bumped to momesh3 when the
// envelope encoding grew the multiplexed-channel ID field (momesh2 had
// added the ordering-key field), so an old peer is refused at the
// handshake instead of misparsing frames.
const helloMagic = "momesh3"

// errCorruptFrame reports a malformed frame payload.
var errCorruptFrame = errors.New("netmesh: corrupt frame")

// maxBatch bounds the envelopes one batch frame may carry, so a
// corrupt count can't provoke a huge allocation.
const maxBatch = 1 << 12

// PoolStats counts codec buffer-pool traffic: Gets is every encoder
// checkout on the hot send path, Misses is the subset that had to
// allocate because the pool was empty. A high hit rate means the
// steady-state encode path is allocation-free.
type PoolStats struct {
	// Gets counts encoder checkouts.
	Gets uint64
	// Misses counts checkouts that allocated a fresh encoder.
	Misses uint64
}

var (
	poolGets   atomic.Uint64
	poolMisses atomic.Uint64
	encPool    = sync.Pool{New: func() any {
		poolMisses.Add(1)
		return new(snapio.Writer)
	}}
)

// CodecPoolStats returns process-wide codec buffer-pool tallies
// (the pool is shared by every Mesh in the process).
func CodecPoolStats() PoolStats {
	return PoolStats{Gets: poolGets.Load(), Misses: poolMisses.Load()}
}

// getEncoder checks a reusable frame encoder out of the pool.
func getEncoder() *snapio.Writer {
	poolGets.Add(1)
	w := encPool.Get().(*snapio.Writer)
	w.Reset()
	return w
}

// putEncoder returns an encoder to the pool. The caller must be done
// with every slice obtained from w.Out().
func putEncoder(w *snapio.Writer) { encPool.Put(w) }

// hello is the handshake exchanged on every new connection: the dialer
// sends it, the listener validates and answers with welcome or reject.
type hello struct {
	Proc        event.ProcID
	N           int
	Fingerprint string
}

// writeFrame sends one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("netmesh: frame of %d bytes exceeds limit", len(payload))
	}
	hdr := binary.AppendUvarint(nil, uint64(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r *bufio.Reader) ([]byte, error) {
	return readFrameInto(r, nil)
}

// readFrameInto reads one length-prefixed frame into buf (grown as
// needed) and returns the payload, which aliases buf. Reusing buf
// across frames keeps the steady-state read path allocation-free; it is
// safe because the decoders copy every variable-length field out.
func readFrameInto(r *bufio.Reader, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d-byte frame", errCorruptFrame, n)
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// encodeHello builds a hello frame payload.
func encodeHello(h hello) []byte {
	var w snapio.Writer
	w.Byte(frameHello)
	w.Bytes([]byte(helloMagic))
	w.Int(int(h.Proc))
	w.Int(h.N)
	w.Bytes([]byte(h.Fingerprint))
	return w.Out()
}

// decodeHello parses a hello frame payload (kind byte included).
func decodeHello(b []byte) (hello, error) {
	r := snapio.NewReader(b)
	if r.Byte() != frameHello {
		return hello{}, errCorruptFrame
	}
	if string(r.Bytes()) != helloMagic {
		return hello{}, fmt.Errorf("%w: bad magic", errCorruptFrame)
	}
	h := hello{
		Proc: event.ProcID(r.Int()),
		N:    r.Int(),
	}
	h.Fingerprint = string(r.Bytes())
	if err := r.Close(); err != nil {
		return hello{}, err
	}
	return h, nil
}

// encodeWelcome builds the listener's handshake acceptance frame.
func encodeWelcome() []byte { return []byte{frameWelcome} }

// encodeReject builds a reject frame carrying the refusal reason.
func encodeReject(reason string) []byte {
	var w snapio.Writer
	w.Byte(frameReject)
	w.Bytes([]byte(reason))
	return w.Out()
}

// decodeReject extracts the refusal reason from a reject frame,
// tolerating corruption (the connection is dying anyway).
func decodeReject(b []byte) string {
	r := snapio.NewReader(b)
	if r.Byte() != frameReject {
		return "unreadable reject"
	}
	reason := string(r.Bytes())
	if r.Err() != nil || reason == "" {
		return "unreadable reject"
	}
	return reason
}

// encodeEnvelopeBody appends one envelope's field encoding (no frame
// kind byte) to w.
func encodeEnvelopeBody(w *snapio.Writer, e transport.Envelope) {
	w.Int(int(e.Src))
	w.Int(int(e.Dst))
	w.Byte(byte(e.Kind))
	w.U64(uint64(e.Chan))
	w.U64(e.Seq)
	w.U64(e.Cum)
	w.Int(e.Attempt)
	w.Int(int(e.Wire.From))
	w.Int(int(e.Wire.To))
	w.Byte(byte(e.Wire.Kind))
	w.Int(int(e.Wire.Msg))
	w.Byte(byte(e.Wire.Color))
	w.Byte(e.Wire.Ctrl)
	w.U64(uint64(e.Wire.Key))
	w.Bytes(e.Wire.Tag)
	w.Int(len(e.Wire.VC))
	for _, c := range e.Wire.VC {
		w.U64(c)
	}
}

// decodeEnvelopeBody parses one envelope's fields off r. The result
// never aliases the input buffer (Tag and VC are copied), so frame
// read buffers can be reused. VC stamps are carved from *arena — one
// allocation amortized over many envelopes instead of one per stamped
// envelope — and carved sub-slices are never recycled, so they stay
// valid after the arena moves on.
func decodeEnvelopeBody(r *snapio.Reader, arena *[]uint64) (transport.Envelope, error) {
	var e transport.Envelope
	e.Src = event.ProcID(r.Int())
	e.Dst = event.ProcID(r.Int())
	e.Kind = transport.Kind(r.Byte())
	e.Chan = uint32(r.U64())
	e.Seq = r.U64()
	e.Cum = r.U64()
	e.Attempt = r.Int()
	e.Wire.From = event.ProcID(r.Int())
	e.Wire.To = event.ProcID(r.Int())
	e.Wire.Kind = protocol.WireKind(r.Byte())
	e.Wire.Msg = event.MsgID(r.Int())
	e.Wire.Color = event.Color(r.Byte())
	e.Wire.Ctrl = r.Byte()
	e.Wire.Key = event.Key(r.U64())
	e.Wire.Tag = r.Bytes()
	if n := r.Int(); n > 0 {
		if n > maxFrame {
			return transport.Envelope{}, errCorruptFrame
		}
		if len(*arena) < n {
			*arena = make([]uint64, 256*n)
		}
		e.Wire.VC = (*arena)[:n:n]
		*arena = (*arena)[n:]
		for i := range e.Wire.VC {
			e.Wire.VC[i] = r.U64()
		}
	}
	if err := r.Err(); err != nil {
		return transport.Envelope{}, err
	}
	return e, nil
}

// encodeEnvelope builds a single-envelope frame payload.
func encodeEnvelope(e transport.Envelope) []byte {
	var w snapio.Writer
	w.Byte(frameEnvelope)
	encodeEnvelopeBody(&w, e)
	return w.Out()
}

// decodeEnvelope parses an envelope frame payload (kind byte included).
func decodeEnvelope(b []byte) (transport.Envelope, error) {
	r := snapio.NewReader(b)
	if r.Byte() != frameEnvelope {
		return transport.Envelope{}, errCorruptFrame
	}
	var arena []uint64
	e, err := decodeEnvelopeBody(r, &arena)
	if err != nil {
		return transport.Envelope{}, err
	}
	if err := r.Close(); err != nil {
		return transport.Envelope{}, err
	}
	return e, nil
}

// encodeBatch appends a batch frame payload (count-prefixed envelope
// run) into w, which the caller typically checked out of the encoder
// pool. The returned slice aliases w's buffer — consume it before
// putEncoder.
func encodeBatch(w *snapio.Writer, envs []transport.Envelope) []byte {
	w.Reset()
	w.Byte(frameBatch)
	w.Int(len(envs))
	for _, e := range envs {
		encodeEnvelopeBody(w, e)
	}
	return w.Out()
}

// decodeBatch parses a batch frame payload (kind byte included) into a
// freshly allocated slice — the receiver's inbox retains it, so it must
// not alias any reusable buffer.
func decodeBatch(b []byte) ([]transport.Envelope, error) {
	r := snapio.NewReader(b)
	if r.Byte() != frameBatch {
		return nil, errCorruptFrame
	}
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n <= 0 || n > maxBatch {
		return nil, fmt.Errorf("%w: %d-envelope batch", errCorruptFrame, n)
	}
	envs := make([]transport.Envelope, 0, n)
	var arena []uint64
	for i := 0; i < n; i++ {
		e, err := decodeEnvelopeBody(r, &arena)
		if err != nil {
			return nil, err
		}
		envs = append(envs, e)
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return envs, nil
}
