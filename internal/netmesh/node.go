// Node hosts one process of a protocol instance on top of the mesh:
// the distributed counterpart of one internal/sim incarnation. All
// protocol handlers run on a single goroutine fed by an unbounded
// inbox (invokes from the local client, envelopes from the mesh), so
// the paper's per-process serialization holds without protocol-side
// locking. The reliable sublayer and WAL semantics are byte-for-byte
// the harness's: every arriving data envelope is accepted (dedup) and
// re-acked, inputs are journaled before their handler runs, and a
// crash tears the instance down and rebuilds it by checkpoint restore
// plus journal replay with output-divergence verification.
package netmesh

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"msgorder/internal/crash"
	"msgorder/internal/event"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
	"msgorder/internal/snapio"
	"msgorder/internal/transport"
)

// Node errors.
var (
	// ErrProtocol reports a protocol contract violation (capability,
	// addressing, replay divergence details wrap it).
	ErrProtocol = errors.New("netmesh: protocol error")
	// ErrReplayDiverged reports recovery replay emitting different
	// outputs than the pre-crash incarnation journaled.
	ErrReplayDiverged = errors.New("netmesh: replay diverged from journal")
	// ErrClosed reports use of a closed node.
	ErrClosed = errors.New("netmesh: node closed")
)

// Fingerprint derives the handshake fingerprint for a mesh of n
// processes running the named protocol under the given spec: every
// field that must agree for a cross-process run to make sense. A
// channel-multiplexing daemon fingerprints proto "mux" with a
// channel-independent spec — channels open and close dynamically, so
// per-channel agreement is the symmetric-open contract, not the
// handshake's job.
func Fingerprint(proto, spec string, n int) string {
	return fmt.Sprintf("momesh3|n=%d|proto=%s|spec=%s", n, proto, spec)
}

// NodeConfig configures one protocol-hosting node.
type NodeConfig struct {
	// Self is this process's id; Procs the mesh size.
	Self  event.ProcID
	Procs int
	// Maker builds the protocol instance (fresh per incarnation).
	Maker protocol.Maker
	// Mesh configures the socket layer. Self is forced to NodeConfig's;
	// Fingerprint should come from Fingerprint().
	Mesh MeshConfig
	// Transport tunes the reliable sublayer (zero value = defaults).
	Transport transport.Config
	// WALPath, when non-empty, makes the journal file-backed so it
	// would survive an OS-process restart; empty keeps it in memory.
	WALPath string
	// SnapshotEvery checkpoints a Snapshotter protocol each time this
	// many WAL entries accumulate (0 = never; recovery replays all).
	SnapshotEvery int
	// WALGroupCommit, when non-nil, batches the journal's file writes
	// (crash.GroupCommit); the in-memory replay mirror stays immediate.
	WALGroupCommit *crash.GroupCommit
	// OnDeliver, when non-nil, is called from the handler goroutine on
	// every live delivery (not during replay) — the load runner's
	// latency probe. It must be fast and must not call back into the
	// node.
	OnDeliver func(event.MsgID)
	// Heartbeat, when enabled, wires a failure detector into the node.
	Heartbeat HeartbeatConfig
	// Tracer and Metrics, when non-nil, instrument the node.
	Tracer  obs.Tracer
	Metrics *obs.Registry
	// ProbeLabel, when non-empty, overrides the protocol name as the
	// probe's histogram label. The channel-multiplexing daemon sets it
	// per channel ("causal-rst@orders") so two channels running the same
	// protocol keep separable latency and inhibition histograms in the
	// shared registry.
	ProbeLabel string
}

// HeartbeatConfig runs a liveness beat loop on the node: every
// Interval the node sends one transport.Beat envelope to each peer —
// through the mesh, so the fault injector's partitions and one-way
// cuts starve them exactly like data traffic — and records its own
// liveness on Detector; arriving beats feed Detector.Beat with their
// sender. Beats are unsequenced, unacked and never journaled: losing
// one is the failure signal, not a fault to mask. Zero Interval or
// nil Detector disables the loop.
type HeartbeatConfig struct {
	// Interval is the beat period.
	Interval time.Duration
	// Detector, when non-nil, accumulates beats at this node's vantage
	// and publishes suspicions — set it on the observer node driving
	// administrative eviction. Nodes with a nil Detector still send
	// beats (so observers can watch them) but ignore arriving ones.
	Detector *crash.Detector
}

// inbox item kinds.
const (
	itemInvoke = iota
	itemBatch
	itemCrash
	itemRestart
)

type nodeItem struct {
	kind     int
	msg      event.Message
	envs     []transport.Envelope
	downtime time.Duration
}

// inbox is the node's unbounded input queue; close drains first.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []nodeItem
	closed bool
}

func newInbox() *inbox {
	q := &inbox{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *inbox) push(it nodeItem) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.items = append(q.items, it)
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

func (q *inbox) pop() (nodeItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nodeItem{}, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it, true
}

func (q *inbox) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Node is one live process of a protocol instance on the mesh. A node
// normally owns its mesh endpoint (NewNode); a channel-multiplexing
// host instead builds one node per channel over a shared mesh
// (NewMuxNode) — then mesh is nil and every outbound envelope goes
// through the host's send hook, which stamps the channel ID.
type Node struct {
	cfg   NodeConfig
	class protocol.Class
	proto string

	mesh  *Mesh // nil for channel nodes hosted over a shared mesh
	send  func(transport.Envelope)
	tr    *transport.Reliable
	wal   *crash.WAL
	sink  *obs.Sink
	probe *obs.Probe
	q     *inbox

	// Handler-goroutine state (no locking needed).
	inst        protocol.Process
	env         *nodeEnv
	down        bool
	incarnation int
	heldInvokes []event.Message // invokes arriving during downtime

	// downPub mirrors the handler goroutine's down flag for the beat
	// goroutine: a crashed incarnation must fall silent.
	downPub  atomic.Bool
	beatStop chan struct{}

	mu        sync.Mutex
	events    []event.Event // user-visible events at Self, in local order
	delivered []event.MsgID
	stats     protocol.Stats
	err       error
	timers    []*time.Timer
	closed    bool

	wg sync.WaitGroup
}

// nodeEnv implements protocol.Env for one incarnation. In replay mode
// (crash recovery) it suppresses all real effects and collects would-be
// outputs for divergence checking, exactly like the sim's env.
type nodeEnv struct {
	n      *Node
	replay bool
	got    []crash.Entry
}

var _ protocol.Env = (*nodeEnv)(nil)

func (e *nodeEnv) Self() event.ProcID { return e.n.cfg.Self }
func (e *nodeEnv) NumProcs() int      { return e.n.cfg.Procs }

func (e *nodeEnv) Send(w protocol.Wire) {
	n := e.n
	w.From = n.cfg.Self
	if e.replay {
		e.got = append(e.got, crash.Entry{Kind: crash.EntrySend, Wire: w})
		return
	}
	if int(w.To) < 0 || int(w.To) >= n.cfg.Procs {
		n.fail(fmt.Errorf("%w: send to out-of-range process %d", ErrProtocol, w.To))
		return
	}
	if err := protocol.CheckCapability(n.class, w); err != nil {
		n.fail(fmt.Errorf("%w: P%d: %v", ErrProtocol, n.cfg.Self, err))
		return
	}
	n.mu.Lock()
	switch w.Kind {
	case protocol.UserWire:
		n.stats.UserMessages++
		n.stats.UserTagBytes += len(w.Tag)
		n.events = append(n.events, event.E(w.Msg, event.Send))
	case protocol.ControlWire:
		n.stats.ControlMessages++
		n.stats.ControlBytes += len(w.Tag)
	default:
		n.mu.Unlock()
		n.fail(fmt.Errorf("%w: P%d sent wire with invalid kind", ErrProtocol, n.cfg.Self))
		return
	}
	n.mu.Unlock()
	n.journal(crash.Entry{Kind: crash.EntrySend, Wire: w})
	n.probe.Send(&w)
	n.send(n.tr.Wrap(n.cfg.Self, w.To, w))
}

func (e *nodeEnv) Deliver(id event.MsgID) {
	n := e.n
	if e.replay {
		e.got = append(e.got, crash.Entry{Kind: crash.EntryDeliver, ID: id})
		return
	}
	n.journal(crash.Entry{Kind: crash.EntryDeliver, ID: id})
	n.probe.Deliver(n.cfg.Self, id)
	n.mu.Lock()
	n.events = append(n.events, event.E(id, event.Deliver))
	n.delivered = append(n.delivered, id)
	n.stats.Deliveries++
	n.mu.Unlock()
	if n.cfg.OnDeliver != nil {
		n.cfg.OnDeliver(id)
	}
}

// NewNode starts a node: mesh listener up, protocol instance
// initialized, handler loop running.
func NewNode(cfg NodeConfig) (*Node, error) {
	return newNode(cfg, nil)
}

// NewMuxNode starts a node that hosts one multiplexed channel's
// protocol instance over a carrier the caller owns, instead of binding
// its own mesh endpoint: every outbound envelope (data, ack, journaled
// re-send, heartbeat) goes through send — which must stamp the
// channel's ID and hand the envelope to the shared mesh — and the
// caller demultiplexes arriving envelopes into the node with
// HandleEnvelopes. Everything else (per-process handler serialization,
// reliable sublayer, WAL journaling, checkpoint restore and replay
// verification) is byte-for-byte the standalone node's, which is what
// makes a multiplexed channel's user view indistinguishable from a
// single-spec deployment's. cfg.Mesh is ignored.
func NewMuxNode(cfg NodeConfig, send func(transport.Envelope)) (*Node, error) {
	if send == nil {
		return nil, fmt.Errorf("netmesh: NewMuxNode needs a send hook")
	}
	return newNode(cfg, send)
}

// newNode builds a node; a nil send means the node owns a mesh
// endpoint built from cfg.Mesh.
func newNode(cfg NodeConfig, send func(transport.Envelope)) (*Node, error) {
	if cfg.Procs <= 0 || int(cfg.Self) < 0 || int(cfg.Self) >= cfg.Procs {
		return nil, fmt.Errorf("netmesh: bad node identity %d/%d", cfg.Self, cfg.Procs)
	}
	n := &Node{cfg: cfg, q: newInbox(), send: send}
	if cfg.Tracer != nil || cfg.Metrics != nil {
		start := time.Now()
		n.sink = &obs.Sink{Tracer: cfg.Tracer, Metrics: cfg.Metrics,
			Now: func() int64 { return time.Since(start).Microseconds() }}
		// The fleet observability plane rebases each process's Step
		// timebase (µs since node start) onto a shared wall-clock axis
		// using this gauge, so cross-process latency segments compare.
		cfg.Metrics.Gauge(obs.TimebaseGauge, start.UnixMicro())
	}
	if cfg.WALPath != "" {
		w, err := crash.OpenFileWAL(cfg.WALPath)
		if err != nil {
			return nil, fmt.Errorf("netmesh: open WAL: %w", err)
		}
		n.wal = w
	} else {
		n.wal = crash.NewWAL()
	}

	inst := cfg.Maker()
	n.class = protocol.General
	if d, ok := inst.(protocol.Describer); ok {
		n.class = d.Describe().Class
		n.proto = d.Describe().Name
	}
	if n.sink != nil {
		label := n.proto
		if cfg.ProbeLabel != "" {
			label = cfg.ProbeLabel
		}
		n.probe = obs.NewProbe(cfg.Procs, cfg.Tracer, cfg.Metrics, label, n.sink.Now)
	}

	tcfg := cfg.Transport
	if tcfg.Obs == nil {
		tcfg.Obs = n.sink
	}
	if cfg.WALGroupCommit != nil {
		n.wal.EnableGroupCommit(*cfg.WALGroupCommit)
	}
	if n.send == nil {
		mcfg := cfg.Mesh
		mcfg.Self = cfg.Self
		if mcfg.Obs == nil {
			mcfg.Obs = n.sink
		}
		if inj := mcfg.Injector; inj != nil && n.sink != nil {
			inj.Observe(n.sink)
		}
		mesh, err := NewMesh(mcfg, func(envs []transport.Envelope) {
			n.q.push(nodeItem{kind: itemBatch, envs: envs})
		})
		if err != nil {
			n.wal.Close()
			return nil, err
		}
		n.mesh = mesh
		n.send = mesh.Send
	}
	n.tr = transport.NewReliable(tcfg, n.send)

	if err := n.boot(inst); err != nil {
		n.tr.Close()
		if n.mesh != nil {
			n.mesh.Close()
		}
		n.wal.Close()
		return nil, err
	}

	n.wg.Add(1)
	go n.run()
	if hb := cfg.Heartbeat; hb.Interval > 0 {
		n.beatStop = make(chan struct{})
		n.wg.Add(1)
		go n.runBeats(hb)
	}
	return n, nil
}

// runBeats is the heartbeat loop: every interval, record own liveness
// and fan one Beat envelope out to every peer. A crashed incarnation
// falls silent until its restart.
func (n *Node) runBeats(hb HeartbeatConfig) {
	defer n.wg.Done()
	t := time.NewTicker(hb.Interval)
	defer t.Stop()
	for {
		select {
		case <-n.beatStop:
			return
		case <-t.C:
		}
		if n.downPub.Load() {
			continue
		}
		if hb.Detector != nil {
			hb.Detector.Beat(n.cfg.Self)
		}
		for p := 0; p < n.cfg.Procs; p++ {
			if event.ProcID(p) == n.cfg.Self {
				continue
			}
			n.send(transport.Envelope{Src: n.cfg.Self, Dst: event.ProcID(p), Kind: transport.Beat})
		}
	}
}

// boot brings the first incarnation live. With a fresh journal that is
// just Init. When the configured WALPath already holds a previous
// OS-process incarnation's journal, boot instead performs a durable
// restart: restore the composite checkpoint (protocol state AND the
// reliable sublayer's sequence/dedup state), replay the journal suffix
// with output verification, then re-apply the suffix's transport
// effects — journaled receives re-enter the dedup tables so peer
// retransmits of already-accepted wires are dropped, and journaled
// sends are re-wrapped (the restored sequence counters reproduce the
// original seqnums) and retransmitted, which the peer's own dedup
// absorbs if it had already accepted them. Without this, a restarted
// daemon's sender counters reset to zero (the peer drops all new sends
// as duplicates) and its receiver high-water marks regress (old wires
// get delivered twice).
func (n *Node) boot(inst protocol.Process) error {
	snap, entries := n.wal.Replay()
	if snap == nil && len(entries) == 0 {
		n.inst = inst
		n.env = &nodeEnv{n: n}
		inst.Init(n.env)
		return nil
	}
	started := time.Now()
	e := &nodeEnv{n: n, replay: true}
	inst.Init(e)
	if snap != nil {
		trSnap, err := n.restoreSnapshot(inst, snap)
		if err != nil {
			return err
		}
		if err := n.tr.RestoreState(trSnap); err != nil {
			return fmt.Errorf("%w: P%d transport restore: %v", ErrProtocol, n.cfg.Self, err)
		}
	}
	replayed, err := replayEntries(inst, e, entries)
	if err != nil {
		return err
	}
	// Re-apply the journal suffix's transport effects in journal order,
	// so sequence assignment matches the pre-crash incarnation exactly.
	for _, en := range entries {
		switch en.Kind {
		case crash.EntryReceive:
			n.tr.MarkAccepted(en.Wire.From, n.cfg.Self, en.Seq)
		case crash.EntrySend:
			n.send(n.tr.Wrap(n.cfg.Self, en.Wire.To, en.Wire))
		}
	}
	e.replay = false
	e.got = nil
	n.inst, n.env = inst, e
	n.mu.Lock()
	n.stats.Recoveries++
	n.stats.ReplayedEvents += replayed
	n.mu.Unlock()
	if s := n.sink; s.Enabled() {
		lat := time.Since(started)
		s.Count("sim.recoveries", 1)
		s.Observe("crash.recovery.latency.us", lat.Microseconds())
		s.Observe("crash.recovery.replayed", int64(replayed))
		s.Trace(obs.Record{Step: s.Step(), Proc: n.cfg.Self, Op: obs.OpRecover, Msg: obs.NoMsg,
			Note: fmt.Sprintf("durable boot restore live after %v, replayed %d entries", lat.Round(time.Microsecond), replayed)})
	}
	return nil
}

// Addr returns the mesh listener's bound address ("" for a channel
// node hosted over a shared mesh).
func (n *Node) Addr() string {
	if n.mesh == nil {
		return ""
	}
	return n.mesh.Addr()
}

// HandleEnvelopes feeds arriving envelopes into the node's inbox: the
// entry point a channel-multiplexing host uses after demultiplexing a
// frame batch by channel ID. The node takes ownership of the slice.
func (n *Node) HandleEnvelopes(envs []transport.Envelope) {
	n.q.push(nodeItem{kind: itemBatch, envs: envs})
}

// Self returns the hosted process's ID.
func (n *Node) Self() event.ProcID { return n.cfg.Self }

// Procs returns the mesh size.
func (n *Node) Procs() int { return n.cfg.Procs }

// Proto returns the hosted protocol's descriptor name ("" if the
// protocol is not a Describer).
func (n *Node) Proto() string { return n.proto }

// Invoke submits a user message originating here. The caller owns
// MsgID assignment (the run's global numbering); m.From must be Self.
// Invokes arriving while the node is crashed queue up and drain in the
// next incarnation, like a daemon's client requests would.
func (n *Node) Invoke(m event.Message) error {
	if m.From != n.cfg.Self {
		return fmt.Errorf("%w: invoke of m%d at P%d, From = %d", ErrProtocol, m.ID, n.cfg.Self, m.From)
	}
	if int(m.To) < 0 || int(m.To) >= n.cfg.Procs || m.To == m.From {
		return fmt.Errorf("%w: invoke of m%d to %d", ErrProtocol, m.ID, m.To)
	}
	if !n.q.push(nodeItem{kind: itemInvoke, msg: m}) {
		return ErrClosed
	}
	return nil
}

// Crash tears the protocol instance down (protocol-layer crash: the
// mesh and the transport's network-global ack bookkeeping stay up, as
// in the sim, whose documented semantics are that seqnums survive a
// restart). After downtime the node restores the latest checkpoint,
// replays the journal suffix, verifies the outputs, and goes live.
func (n *Node) Crash(downtime time.Duration) error {
	if downtime <= 0 {
		downtime = 25 * time.Millisecond
	}
	if !n.q.push(nodeItem{kind: itemCrash, downtime: downtime}) {
		return ErrClosed
	}
	return nil
}

// Deliveries returns the local delivery order so far.
func (n *Node) Deliveries() []event.MsgID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]event.MsgID(nil), n.delivered...)
}

// Events returns the user-visible events (sends and delivers) recorded
// at this process, in local order.
func (n *Node) Events() []event.Event {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]event.Event(nil), n.events...)
}

// Stats returns the protocol tallies with the transport and injector
// counters folded in.
func (n *Node) Stats() protocol.Stats {
	n.mu.Lock()
	s := n.stats
	n.mu.Unlock()
	tc := n.tr.Counters()
	s.Retransmits = tc.Retransmits
	s.DupsDropped = tc.DupsDropped
	if inj := n.cfg.Mesh.Injector; inj != nil {
		s.FaultsInjected = inj.Counters().Total()
	}
	return s
}

// TransportCounters returns the reliable sublayer's tallies.
func (n *Node) TransportCounters() transport.Counters { return n.tr.Counters() }

// WALStats returns the journal's append/flush tallies (group-commit
// batching shows up as Flushes ≪ Appends).
func (n *Node) WALStats() crash.WALStats { return n.wal.Stats() }

// MeshCounters returns the socket layer's tallies (zero for a channel
// node — the shared mesh's host owns those counters).
func (n *Node) MeshCounters() Counters {
	if n.mesh == nil {
		return Counters{}
	}
	return n.mesh.Counters()
}

// Err returns the first protocol/harness failure, or the mesh's
// handshake refusal, if any.
func (n *Node) Err() error {
	n.mu.Lock()
	err := n.err
	n.mu.Unlock()
	if err != nil {
		return err
	}
	if n.mesh == nil {
		return nil
	}
	return n.mesh.Rejected()
}

// WaitDeliveries blocks until at least k messages have been delivered
// here (or the node fails, or the timeout passes).
func (n *Node) WaitDeliveries(k int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		n.mu.Lock()
		got, err := len(n.delivered), n.err
		n.mu.Unlock()
		switch {
		case err != nil:
			return err
		case got >= k:
			return nil
		case time.Now().After(deadline):
			return fmt.Errorf("netmesh: P%d delivered %d of %d after %v", n.cfg.Self, got, k, timeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Pending returns the transport's unacknowledged envelope count.
func (n *Node) Pending() int { return n.tr.Pending() }

// Close drains and stops the node: inbox first (queued handlers run),
// then the transport loop and the mesh (outboxes flush).
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	timers := n.timers
	n.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	if n.beatStop != nil {
		close(n.beatStop)
	}
	n.q.close()
	n.wg.Wait()
	n.tr.Close()
	if n.mesh != nil {
		n.mesh.Close()
	}
	n.wal.Close()
	return nil
}

func (n *Node) fail(err error) {
	n.mu.Lock()
	if n.err == nil {
		n.err = err
	}
	n.mu.Unlock()
}

// journal appends one WAL entry, surfacing write errors as node
// failures.
func (n *Node) journal(e crash.Entry) {
	if err := n.wal.Append(e); err != nil {
		n.fail(err)
	}
}

// run is the handler loop: one item at a time, per-process serialized.
func (n *Node) run() {
	defer n.wg.Done()
	for {
		it, ok := n.q.pop()
		if !ok {
			return
		}
		switch it.kind {
		case itemInvoke:
			if n.down {
				n.heldInvokes = append(n.heldInvokes, it.msg)
				continue
			}
			n.doInvoke(it.msg)
		case itemBatch:
			n.handleBatch(it.envs)
		case itemCrash:
			n.doCrash(it.downtime)
		case itemRestart:
			n.doRestart()
		}
	}
}

func (n *Node) doInvoke(m event.Message) {
	n.journal(crash.Entry{Kind: crash.EntryInvoke, Msg: m})
	n.probe.Invoke(m)
	n.inst.OnInvoke(m)
	n.maybeCheckpoint()
}

// handleBatch mirrors the sim's receiver side over one arrival batch:
// acks always update the network-global pending table (even while
// crashed); data envelopes are dropped while down (the sender
// retransmits until the restart), otherwise deduplicated, journaled
// and handed to the protocol. Acks are pipelined: per source, one
// cumulative ack (transport.Envelope.Cum) acknowledges the batch's
// highest sequence number plus the whole contiguous prefix, and only
// sequence numbers the cumulative ack does not cover get an exact ack
// of their own — so an N-envelope batch usually costs one ack frame,
// not N.
func (n *Node) handleBatch(envs []transport.Envelope) {
	// hi tracks, per source, the batch's data envelope with the highest
	// sequence number: the one the cumulative ack is minted from.
	var hi map[event.ProcID]transport.Envelope
	var rest []transport.Envelope
	for _, e := range envs {
		switch e.Kind {
		case transport.Ack:
			n.tr.Ack(e)
		case transport.Beat:
			// Liveness signal only: no ack, no journal, no dedup — a
			// crashed incarnation is deaf to beats too.
			if n.down {
				continue
			}
			if det := n.cfg.Heartbeat.Detector; det != nil {
				det.Beat(e.Src)
			}
		case transport.Data:
			if n.down {
				continue
			}
			fresh := n.tr.Accept(e)
			if hi == nil {
				hi = make(map[event.ProcID]transport.Envelope, 2)
			}
			if cur, ok := hi[e.Src]; !ok || e.Seq > cur.Seq {
				if ok {
					rest = append(rest, cur)
				}
				hi[e.Src] = e
			} else {
				rest = append(rest, e)
			}
			if !fresh {
				continue
			}
			// The journal keeps protocol state, not observability
			// annotations: dropping the trace stamp here releases the
			// decoder's VC arenas instead of pinning every arriving
			// stamp in memory for the life of the run.
			jw := e.Wire
			jw.VC = nil
			n.journal(crash.Entry{Kind: crash.EntryReceive, Wire: jw, Seq: e.Seq})
			n.probe.Receive(e.Wire)
			n.inst.OnReceive(e.Wire)
			n.maybeCheckpoint()
		}
	}
	// Always (re-)acknowledge — the previous ack may have been lost.
	for _, e := range hi {
		n.send(n.tr.CumAckFor(e))
	}
	for _, e := range rest {
		if e.Seq > n.tr.CumFor(e) {
			// A gap the cumulative ack can't cover yet: ack it exactly.
			n.send(transport.AckFor(e))
		}
	}
}

// maybeCheckpoint snapshots a Snapshotter protocol once enough journal
// entries accumulated. Runs between handlers only, so a checkpoint
// never splits one handler's input from its outputs. The checkpoint is
// a composite of the protocol snapshot and the reliable sublayer's
// state, so an OS-process restart (boot restore) resumes with the same
// sequence counters and dedup high-water marks instead of resetting
// them — resetting would make the peer drop every new send as a
// duplicate and would re-deliver wires the pre-crash incarnation
// already accepted.
func (n *Node) maybeCheckpoint() {
	if n.cfg.SnapshotEvery <= 0 || n.wal.SinceCheckpoint() < n.cfg.SnapshotEvery {
		return
	}
	s, ok := n.inst.(protocol.Snapshotter)
	if !ok {
		return
	}
	if err := n.wal.Checkpoint(encodeCheckpoint(s.Snapshot(), n.tr.SnapshotState())); err != nil {
		n.fail(err)
		return
	}
	n.sink.Count("crash.wal.checkpoints", 1)
}

// encodeCheckpoint packs the protocol snapshot and the transport state
// snapshot into one WAL checkpoint blob.
func encodeCheckpoint(protoSnap, trSnap []byte) []byte {
	var w snapio.Writer
	w.Bytes(protoSnap)
	w.Bytes(trSnap)
	return w.Out()
}

// decodeCheckpoint splits a composite WAL checkpoint blob back into its
// protocol and transport parts.
func decodeCheckpoint(b []byte) (protoSnap, trSnap []byte, err error) {
	r := snapio.NewReader(b)
	protoSnap = r.Bytes()
	trSnap = r.Bytes()
	if err := r.Close(); err != nil {
		return nil, nil, err
	}
	return protoSnap, trSnap, nil
}

func (n *Node) doCrash(downtime time.Duration) {
	if n.down {
		return
	}
	n.down = true
	n.downPub.Store(true)
	n.mu.Lock()
	n.stats.Crashes++
	closed := n.closed
	n.mu.Unlock()
	if s := n.sink; s.Enabled() {
		s.Count("sim.crashes", 1)
		s.Trace(obs.Record{Step: s.Step(), Proc: n.cfg.Self, Op: obs.OpCrash, Msg: obs.NoMsg,
			Note: fmt.Sprintf("crash-restart, down %v (incarnation %d)", downtime, n.incarnation)})
	}
	if closed {
		return
	}
	t := time.AfterFunc(downtime, func() {
		n.q.push(nodeItem{kind: itemRestart})
	})
	n.mu.Lock()
	n.timers = append(n.timers, t)
	n.mu.Unlock()
}

// restoreSnapshot decodes a composite checkpoint and restores its
// protocol part into inst; the transport part is returned for callers
// that want it (boot restore applies it, in-process restart must not —
// the live transport's state is ahead of the checkpoint, and regressing
// it would re-deliver wires the dedup tables already absorbed).
func (n *Node) restoreSnapshot(inst protocol.Process, snap []byte) ([]byte, error) {
	protoSnap, trSnap, err := decodeCheckpoint(snap)
	if err != nil {
		return nil, fmt.Errorf("%w: P%d checkpoint decode: %v", ErrProtocol, n.cfg.Self, err)
	}
	s, ok := inst.(protocol.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("%w: P%d has a checkpoint but no Snapshotter", ErrProtocol, n.cfg.Self)
	}
	if err := s.Restore(protoSnap); err != nil {
		return nil, fmt.Errorf("%w: P%d restore: %v", ErrProtocol, n.cfg.Self, err)
	}
	return trSnap, nil
}

// replayEntries re-runs the journal suffix's inputs through inst with
// effects suppressed (e must be in replay mode), verifying each input's
// outputs against the journaled ones. Returns the replayed input count.
func replayEntries(inst protocol.Process, e *nodeEnv, entries []crash.Entry) (int, error) {
	self := e.n.cfg.Self
	var outs []crash.Entry
	for _, en := range entries {
		if !en.Input() {
			outs = append(outs, en)
		}
	}
	oi, replayed := 0, 0
	for _, en := range entries {
		if !en.Input() {
			continue
		}
		switch en.Kind {
		case crash.EntryInvoke:
			inst.OnInvoke(en.Msg)
		case crash.EntryBroadcast:
			deliverBroadcast(inst, en.Msgs)
		case crash.EntryReceive:
			inst.OnReceive(en.Wire)
		}
		replayed++
		for _, g := range e.got {
			if oi >= len(outs) || !crash.SameOutput(outs[oi], g) {
				return 0, fmt.Errorf("%w: P%d replaying %s entry %d", ErrReplayDiverged, self, en.Kind, replayed)
			}
			oi++
		}
		e.got = e.got[:0]
	}
	if oi != len(outs) {
		return 0, fmt.Errorf("%w: P%d re-emitted %d of %d journaled outputs", ErrReplayDiverged, self, oi, len(outs))
	}
	return replayed, nil
}

// doRestart rebuilds the protocol instance from durable state: restore
// the latest checkpoint, replay the journal suffix with effects
// suppressed, verify the replayed outputs match what the pre-crash
// incarnation journaled, then go live and drain invokes held during
// the downtime.
func (n *Node) doRestart() {
	if !n.down {
		return
	}
	started := time.Now()
	inst := n.cfg.Maker()
	e := &nodeEnv{n: n, replay: true}
	inst.Init(e)

	snap, entries := n.wal.Replay()
	if snap != nil {
		if _, err := n.restoreSnapshot(inst, snap); err != nil {
			n.fail(err)
			return
		}
	}
	replayed, err := replayEntries(inst, e, entries)
	if err != nil {
		n.fail(err)
		return
	}

	e.replay = false
	e.got = nil
	n.inst, n.env = inst, e
	n.down = false
	n.downPub.Store(false)
	n.incarnation++
	n.mu.Lock()
	n.stats.Recoveries++
	n.stats.ReplayedEvents += replayed
	n.mu.Unlock()
	if s := n.sink; s.Enabled() {
		lat := time.Since(started)
		s.Count("sim.recoveries", 1)
		s.Observe("crash.recovery.latency.us", lat.Microseconds())
		s.Observe("crash.recovery.replayed", int64(replayed))
		s.Trace(obs.Record{Step: s.Step(), Proc: n.cfg.Self, Op: obs.OpRecover, Msg: obs.NoMsg,
			Note: fmt.Sprintf("incarnation %d live after %v, replayed %d entries", n.incarnation, lat.Round(time.Microsecond), replayed)})
	}
	held := n.heldInvokes
	n.heldInvokes = nil
	for _, m := range held {
		n.doInvoke(m)
	}
}

// deliverBroadcast mirrors the sim's replay dispatch for broadcast
// journal entries.
func deliverBroadcast(p protocol.Process, msgs []event.Message) {
	if b, ok := p.(protocol.Broadcaster); ok {
		b.OnBroadcast(msgs)
		return
	}
	for _, m := range msgs {
		p.OnInvoke(m)
	}
}
