package catalog

import (
	"testing"

	"msgorder/internal/check"
	"msgorder/internal/classify"
	"msgorder/internal/event"
	"msgorder/internal/universe"
	"msgorder/internal/userview"
)

// TestClassifierVsBoundedContainment cross-validates the graph-based
// classifier against brute force: for every catalog entry with at most
// three variables, enumerate complete runs over bounded universes
// (no self-addressed messages — the paper's model) and check the
// limit-set containment signature Theorem 1 associates with each class:
//
//	unimplementable  ⇔ some logically synchronous run violates B
//	general          ⇔ sync runs safe, some causally ordered run violates B
//	tagged           ⇔ CO runs safe, some valid run violates B
//	tagless          ⇔ no run violates B (B unsatisfiable)
//
// Violations found at this bound are definitive; "safe" directions are
// exhaustive for the 3-message universes, which by the Theorem 2/4
// constructions suffice for predicates of ≤ 3 variables.
func TestClassifierVsBoundedContainment(t *testing.T) {
	type flags struct {
		violSync, violCO, violAny bool
	}
	var entries []Entry
	for _, e := range Entries() {
		if len(e.Pred.Vars) <= 3 {
			entries = append(entries, e)
		}
	}
	results := make([]flags, len(entries))

	scan := func(r *userview.Run) bool {
		inSync := r.InSync()
		inCO := r.InCO()
		for i, e := range entries {
			if _, bad := check.FindViolation(r, e.Pred); !bad {
				continue
			}
			results[i].violAny = true
			if inCO {
				results[i].violCO = true
			}
			if inSync {
				results[i].violSync = true
			}
		}
		return true
	}
	// The 2-process scan carries every color the catalog's guards name;
	// the wider 3-process scan (needed for 3-variable cross-process
	// witnesses, none of which are color-guarded) keeps the cheaper set.
	universe.RunsNoSelfColored(3, 2,
		[]event.Color{event.ColorNone, event.ColorRed, event.ColorBlue}, scan)
	if !testing.Short() {
		universe.RunsNoSelfColored(3, 3,
			[]event.Color{event.ColorNone, event.ColorRed}, scan)
	}

	for i, e := range entries {
		res, err := classify.Classify(e.Pred)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		got := results[i]
		switch res.Class {
		case classify.Unimplementable:
			if !got.violSync {
				t.Errorf("%s: classified unimplementable but no sync run violates it at this bound", e.Name)
			}
		case classify.General:
			if got.violSync {
				t.Errorf("%s: classified general but a sync run violates it", e.Name)
			}
			if !got.violCO {
				t.Errorf("%s: classified general but no CO run violates it at this bound", e.Name)
			}
		case classify.Tagged:
			if got.violSync || got.violCO {
				t.Errorf("%s: classified tagged but a CO run violates it (%+v)", e.Name, got)
			}
			if !got.violAny {
				t.Errorf("%s: classified tagged but no run violates it at this bound", e.Name)
			}
		case classify.Tagless:
			if got.violAny {
				t.Errorf("%s: classified tagless but some run violates it", e.Name)
			}
		}
	}
}
