package catalog

import (
	"testing"

	"msgorder/internal/classify"
	"msgorder/internal/pgraph"
)

// TestClassifierMatchesPaper is the Table 1 reproduction in test form:
// the classifier must assign every catalog entry the class the paper
// states.
func TestClassifierMatchesPaper(t *testing.T) {
	for _, e := range Entries() {
		t.Run(e.Name, func(t *testing.T) {
			res, err := classify.Classify(e.Pred)
			if err != nil {
				t.Fatalf("Classify: %v", err)
			}
			if res.Class != e.PaperClass {
				t.Fatalf("class = %v, want %v (%s)\n%s",
					res.Class, e.PaperClass, e.Source, res.Explanation())
			}
		})
	}
}

// TestMinOrderMethodsAgree cross-checks the polynomial walk-based
// minimum-order computation against exhaustive simple-cycle enumeration
// on every catalog predicate (ablation 1 of DESIGN.md).
func TestMinOrderMethodsAgree(t *testing.T) {
	for _, e := range Entries() {
		t.Run(e.Name, func(t *testing.T) {
			g := pgraph.New(e.Pred)
			fast, _, fok := g.MinOrder()
			ex, _, eok := g.MinOrderExhaustive()
			if fok != eok {
				t.Fatalf("cycle existence disagrees: fast=%v exhaustive=%v", fok, eok)
			}
			if fok && fast != ex {
				t.Fatalf("min order disagrees: fast=%d exhaustive=%d", fast, ex)
			}
		})
	}
}

func TestUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Entries() {
		if seen[e.Name] {
			t.Errorf("duplicate name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Title == "" || e.Source == "" {
			t.Errorf("%s: missing title or source", e.Name)
		}
	}
}

func TestByName(t *testing.T) {
	e, ok := ByName("fifo")
	if !ok || e.Name != "fifo" {
		t.Fatal("ByName(fifo) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName must fail on unknown names")
	}
	if len(Names()) != len(Entries()) {
		t.Fatal("Names length mismatch")
	}
}

func TestCrownShapes(t *testing.T) {
	for k := 2; k <= 5; k++ {
		p := Crown(k)
		if len(p.Vars) != k || len(p.Atoms) != k {
			t.Fatalf("Crown(%d): %d vars %d atoms", k, len(p.Vars), len(p.Atoms))
		}
	}
}

func TestKWeakerShapes(t *testing.T) {
	p := KWeaker(2)
	if len(p.Vars) != 4 || len(p.Atoms) != 4 {
		t.Fatalf("KWeaker(2): %d vars %d atoms", len(p.Vars), len(p.Atoms))
	}
	pc := KWeakerChannel(1)
	if len(pc.Vars) != 3 || len(pc.Guards) != 4 {
		t.Fatalf("KWeakerChannel(1): %d vars %d guards", len(pc.Vars), len(pc.Guards))
	}
	res, err := classify.Classify(pc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != classify.Tagged {
		t.Fatalf("KWeakerChannel class = %v, want tagged", res.Class)
	}
}
