// Package catalog collects every message-ordering specification discussed
// in the paper as a named forbidden predicate, together with the protocol
// class the paper assigns it. The catalog drives the Table 1 reproduction
// (cmd/mobench table1), the classifier tests, and the protocol
// conformance suite.
package catalog

import (
	"fmt"

	"msgorder/internal/classify"
	"msgorder/internal/predicate"
)

// Entry is one named specification.
type Entry struct {
	// Name is a stable identifier, e.g. "causal-b2".
	Name string
	// Title is the human-readable name used in tables.
	Title string
	// Pred is the forbidden predicate.
	Pred *predicate.Predicate
	// PaperClass is the protocol class the paper assigns (Sections 1, 4
	// and 5).
	PaperClass classify.Class
	// Source cites the paper location.
	Source string
	// Notes records interpretation choices.
	Notes string
}

// Crown returns the k-crown predicate forbidding the logically
// synchronous violation of size k (k ≥ 2):
//
//	x1.s -> x2.r && x2.s -> x3.r && ... && xk.s -> x1.r
func Crown(k int) *predicate.Predicate {
	vars := make([]string, k)
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i+1)
	}
	b := predicate.NewBuilder(vars...)
	for i := 0; i < k; i++ {
		b.Atom(vars[i], predicate.S, vars[(i+1)%k], predicate.R)
	}
	return b.MustBuild()
}

// KWeaker returns the k-weaker causal-ordering predicate of Section 5:
// a chain of k+2 causally ordered sends whose last message is delivered
// before the first.
func KWeaker(k int) *predicate.Predicate {
	n := k + 2
	vars := make([]string, n)
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i+1)
	}
	b := predicate.NewBuilder(vars...)
	for i := 0; i+1 < n; i++ {
		b.Atom(vars[i], predicate.S, vars[i+1], predicate.S)
	}
	b.Atom(vars[n-1], predicate.R, vars[0], predicate.R)
	return b.MustBuild()
}

// KWeakerChannel returns the per-channel restriction of KWeaker: all
// messages share sender and receiver. This is the specification the
// kweaker protocol implements.
func KWeakerChannel(k int) *predicate.Predicate {
	n := k + 2
	vars := make([]string, n)
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i+1)
	}
	b := predicate.NewBuilder(vars...)
	for i := 1; i < n; i++ {
		b.SameProc(vars[0], predicate.S, vars[i], predicate.S)
		b.SameProc(vars[0], predicate.R, vars[i], predicate.R)
	}
	for i := 0; i+1 < n; i++ {
		b.Atom(vars[i], predicate.S, vars[i+1], predicate.S)
	}
	b.Atom(vars[n-1], predicate.R, vars[0], predicate.R)
	return b.MustBuild()
}

// Entries returns the full catalog, in presentation order.
func Entries() []Entry {
	return []Entry{
		{
			Name:       "causal-b2",
			Title:      "Causal ordering (B2)",
			Pred:       predicate.MustParse("x, y : x.s -> y.s && y.r -> x.r"),
			PaperClass: classify.Tagged,
			Source:     "§1, §3.4, Lemma 3.2(b)",
		},
		{
			Name:       "causal-b1",
			Title:      "Causal ordering (B1)",
			Pred:       predicate.MustParse("x, y : x.s -> y.r && y.r -> x.r"),
			PaperClass: classify.Tagged,
			Source:     "Lemma 3.2(a)",
			Notes:      "equivalent to B2 on runs without self-addressed messages",
		},
		{
			Name:       "causal-b3",
			Title:      "Causal ordering (B3)",
			Pred:       predicate.MustParse("x, y : x.s -> y.s && y.s -> x.r"),
			PaperClass: classify.Tagged,
			Source:     "Lemma 3.2(c)",
			Notes:      "equivalent to B2 on runs without self-addressed messages",
		},
		{
			Name:  "fifo",
			Title: "FIFO channels",
			Pred: predicate.MustParse(`x, y :
				process(x.s) == process(y.s) && process(x.r) == process(y.r) :
				x.s -> y.s && y.r -> x.r`),
			PaperClass: classify.Tagged,
			Source:     "§5 (Discussion)",
		},
		{
			Name:       "sync-2",
			Title:      "Logically synchronous (2-crown)",
			Pred:       Crown(2),
			PaperClass: classify.General,
			Source:     "§3.4, Lemma 3.1",
		},
		{
			Name:       "sync-3",
			Title:      "Logically synchronous (3-crown)",
			Pred:       Crown(3),
			PaperClass: classify.General,
			Source:     "§3.4, Lemma 3.1",
		},
		{
			Name:       "sync-4",
			Title:      "Logically synchronous (4-crown)",
			Pred:       Crown(4),
			PaperClass: classify.General,
			Source:     "§3.4, Lemma 3.1",
		},
		{
			Name:       "kweaker-1",
			Title:      "1-weaker causal ordering",
			Pred:       KWeaker(1),
			PaperClass: classify.Tagged,
			Source:     "§5 (Discussion)",
		},
		{
			Name:       "kweaker-2",
			Title:      "2-weaker causal ordering",
			Pred:       KWeaker(2),
			PaperClass: classify.Tagged,
			Source:     "§5 (Discussion)",
		},
		{
			Name:       "kweaker-1-channel",
			Title:      "1-weaker FIFO (per channel)",
			Pred:       KWeakerChannel(1),
			PaperClass: classify.Tagged,
			Source:     "§5 (Discussion), channel restriction",
		},
		{
			Name:  "local-forward-flush",
			Title: "Local forward flush",
			Pred: predicate.MustParse(`x, y :
				process(x.s) == process(y.s) && process(x.r) == process(y.r) && color(y) == red :
				x.s -> y.s && y.r -> x.r`),
			PaperClass: classify.Tagged,
			Source:     "§5 (Discussion)",
			Notes:      "red marks the flush message",
		},
		{
			Name:       "global-forward-flush",
			Title:      "Global forward flush",
			Pred:       predicate.MustParse("x, y : color(y) == red : x.s -> y.s && y.r -> x.r"),
			PaperClass: classify.Tagged,
			Source:     "§5 (Discussion)",
		},
		{
			Name:  "local-backward-flush",
			Title: "Local backward flush",
			Pred: predicate.MustParse(`x, y :
				process(x.s) == process(y.s) && process(x.r) == process(y.r) && color(x) == blue :
				x.s -> y.s && y.r -> x.r`),
			PaperClass: classify.Tagged,
			Source:     "§2 (F-channels [1])",
			Notes:      "blue marks the barrier: later sends on the channel must trail it",
		},
		{
			Name:       "handoff",
			Title:      "Mobile handoff (no message crosses a handoff)",
			Pred:       predicate.MustParse("x, y : color(x) == red : x.s -> y.r && y.s -> x.r"),
			PaperClass: classify.General,
			Source:     "§5 (Discussion)",
			Notes: "the paper's handoff condition demands every message be ordered " +
				"against a handoff; as a forbidden predicate we forbid crossings " +
				"with the (red) handoff, the crown-shaped core that forces control messages",
		},
		{
			Name:       "second-before-first",
			Title:      "Receive the second message before the first",
			Pred:       predicate.MustParse("x, y : x.s -> y.s && x.r -> y.r"),
			PaperClass: classify.Unimplementable,
			Source:     "§5 (Discussion)",
			Notes:      "requires knowing the future or giving up liveness",
		},
		{
			Name:       "async-a",
			Title:      "Vacuous spec (mutual send cycle)",
			Pred:       predicate.MustParse("x, y : x.s -> y.s && y.s -> x.s"),
			PaperClass: classify.Tagless,
			Source:     "Lemma 3.3(a)",
		},
		{
			Name:       "async-b",
			Title:      "Vacuous spec (send/deliver cycle)",
			Pred:       predicate.MustParse("x, y : x.s -> y.s && y.r -> x.s"),
			PaperClass: classify.Tagless,
			Source:     "Lemma 3.3(b)",
		},
		{
			Name:       "async-e",
			Title:      "Vacuous spec (mutual deliver cycle)",
			Pred:       predicate.MustParse("x, y : x.r -> y.r && y.r -> x.r"),
			PaperClass: classify.Tagless,
			Source:     "Lemma 3.3(e)",
		},
		{
			Name:  "example-1",
			Title: "Example 1 (five-variable predicate)",
			Pred: predicate.MustParse(`x1, x2, x3, x4, x5 :
				x1.r -> x2.s && x2.s -> x3.s && x3.r -> x4.r &&
				x4.s -> x1.s && x4.s -> x5.r && x1.s -> x4.r`),
			PaperClass: classify.Tagged,
			Source:     "§4.2, Examples 1–3",
			Notes:      "its minimum-order cycle has the single β vertex x4",
		},
	}
}

// ByName returns the entry with the given name.
func ByName(name string) (Entry, bool) {
	for _, e := range Entries() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Names returns all entry names in order.
func Names() []string {
	es := Entries()
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Name
	}
	return out
}
