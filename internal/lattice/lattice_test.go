package lattice

import (
	"strings"
	"testing"

	"msgorder/internal/catalog"
	"msgorder/internal/event"
	"msgorder/internal/predicate"
)

func coreSpecs(t *testing.T) map[string]*predicate.Predicate {
	t.Helper()
	out := map[string]*predicate.Predicate{}
	for _, name := range []string{"causal-b2", "fifo", "sync-2", "kweaker-1-channel"} {
		e, ok := catalog.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		out[name] = e.Pred
	}
	return out
}

func TestCoreLatticeShape(t *testing.T) {
	lat, err := Compute(Config{Msgs: 3, Procs: 3}, coreSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	if lat.Universe == 0 {
		t.Fatal("empty universe")
	}
	// The textbook chain: sync ⊂ causal ⊂ fifo ⊂ kweaker-1 on a
	// 2-process universe.
	chain := [][2]string{
		{"sync-2", "causal-b2"},
		{"causal-b2", "fifo"},
		{"fifo", "kweaker-1-channel"},
	}
	for _, pair := range chain {
		ok, err := lat.Included(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("expected %s ⊆ %s", pair[0], pair[1])
		}
		back, err := lat.Included(pair[1], pair[0])
		if err != nil {
			t.Fatal(err)
		}
		if back {
			t.Errorf("inclusion %s ⊆ %s must be strict", pair[0], pair[1])
		}
	}
}

func TestHasseEdgesAreCovers(t *testing.T) {
	lat, err := Compute(Config{Msgs: 3, Procs: 3}, coreSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	edges := lat.HasseEdges()
	want := map[[2]string]bool{
		{"sync-2", "causal-b2"}:       true,
		{"causal-b2", "fifo"}:         true,
		{"fifo", "kweaker-1-channel"}: true,
	}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v, want the 3-link chain", edges)
	}
	for _, e := range edges {
		if !want[e] {
			t.Errorf("unexpected Hasse edge %v", e)
		}
	}
}

func TestEquivalenceMerging(t *testing.T) {
	specs := map[string]*predicate.Predicate{
		"b1": predicate.MustParse("x, y : x.s -> y.r && y.r -> x.r"),
		"b2": predicate.MustParse("x, y : x.s -> y.s && y.r -> x.r"),
		"b3": predicate.MustParse("x, y : x.s -> y.s && y.s -> x.r"),
		"fifo": predicate.MustParse(`x, y :
			process(x.s) == process(y.s) && process(x.r) == process(y.r) :
			x.s -> y.s && y.r -> x.r`),
	}
	lat, err := Compute(Config{Msgs: 3, Procs: 3}, specs)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := lat.Equivalent("b1", "b2")
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("B1 and B2 must coincide on the no-self universe (Lemma 3.2)")
	}
	cls := lat.ClassOf("b2")
	if len(cls) != 3 {
		t.Fatalf("equivalence class = %v, want {b1,b2,b3}", cls)
	}
	// Only one edge after merging: causal ⊂ fifo.
	edges := lat.HasseEdges()
	if len(edges) != 1 || edges[0][1] != "fifo" {
		t.Fatalf("edges = %v, want single causal ⊂ fifo edge", edges)
	}
}

// TestTwoProcessCausalEqualsFIFO pins a classical fact the lattice
// rediscovered empirically: between exactly two processes, causal
// ordering and FIFO coincide — any causal violation routes through a
// same-channel overtaking pair.
func TestTwoProcessCausalEqualsFIFO(t *testing.T) {
	lat, err := Compute(Config{Msgs: 3, Procs: 2}, coreSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	eq, err := lat.Equivalent("causal-b2", "fifo")
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("on two processes X_co must equal X_fifo")
	}
}

func TestSelfMessagesSplitB1(t *testing.T) {
	specs := map[string]*predicate.Predicate{
		"b1": predicate.MustParse("x, y : x.s -> y.r && y.r -> x.r"),
		"b2": predicate.MustParse("x, y : x.s -> y.s && y.r -> x.r"),
	}
	lat, err := Compute(Config{Msgs: 2, Procs: 2, AllowSelf: true}, specs)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := lat.Equivalent("b1", "b2")
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("with self-messages B1 must be strictly smaller than B2")
	}
	sub, err := lat.Included("b1", "b2")
	if err != nil {
		t.Fatal(err)
	}
	if !sub {
		t.Fatal("B1 ⊆ B2 must still hold (B2 matches imply B1 matches)")
	}
}

func TestColorsInUniverse(t *testing.T) {
	e, _ := catalog.ByName("global-forward-flush")
	c, _ := catalog.ByName("causal-b2")
	lat, err := Compute(Config{
		Msgs: 2, Procs: 2,
		Colors: []event.Color{event.ColorNone, event.ColorRed},
	}, map[string]*predicate.Predicate{"flush": e.Pred, "causal": c.Pred})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := lat.Included("causal", "flush")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("X_co ⊆ X_flush must hold")
	}
}

func TestErrorsAndString(t *testing.T) {
	lat, err := Compute(Config{Msgs: 2, Procs: 2}, coreSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lat.Included("nope", "fifo"); err == nil {
		t.Fatal("unknown names must error")
	}
	if lat.ClassOf("nope") != nil {
		t.Fatal("unknown class must be nil")
	}
	s := lat.String()
	if !strings.Contains(s, "lattice over") || !strings.Contains(s, "|fifo|") {
		t.Fatalf("String = %q", s)
	}
	if _, err := Compute(Config{}, map[string]*predicate.Predicate{"bad": {}}); err == nil {
		t.Fatal("invalid predicate must be rejected")
	}
}
