// Package lattice computes the empirical inclusion lattice of
// specification sets over a bounded universe of runs — the paper's
// opening picture ("a message ordering specification is characterized as
// the set of acceptable runs") made concrete. Each specification is
// evaluated on every run of the universe; pairwise set inclusions are
// derived from the resulting satisfaction vectors, and the Hasse diagram
// is obtained by transitive reduction.
package lattice

import (
	"fmt"
	"sort"
	"strings"

	"msgorder/internal/check"
	"msgorder/internal/event"
	"msgorder/internal/poset"
	"msgorder/internal/predicate"
	"msgorder/internal/universe"
	"msgorder/internal/userview"
)

// Node is one specification in the lattice.
type Node struct {
	Name string
	Pred *predicate.Predicate
	// Size is |X_B| on the universe.
	Size int
	sat  []bool
}

// Lattice is the computed inclusion structure.
type Lattice struct {
	// Nodes in input order.
	Nodes []Node
	// Universe is the number of runs examined.
	Universe int
	// incl[i][j] reports X_i ⊆ X_j on the universe.
	incl [][]bool
}

// Config bounds the universe.
type Config struct {
	Msgs, Procs int
	Colors      []event.Color
	// AllowSelf includes self-addressed messages (default off, matching
	// the paper's model).
	AllowSelf bool
}

// Compute evaluates the named specifications over the bounded universe.
func Compute(cfg Config, specs map[string]*predicate.Predicate) (*Lattice, error) {
	if cfg.Msgs == 0 {
		cfg.Msgs = 3
	}
	if cfg.Procs == 0 {
		cfg.Procs = 2
	}
	if len(cfg.Colors) == 0 {
		cfg.Colors = []event.Color{event.ColorNone}
	}
	lat := &Lattice{}
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := specs[name].Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		lat.Nodes = append(lat.Nodes, Node{Name: name, Pred: specs[name]})
	}
	scan := func(r *userview.Run) bool {
		lat.Universe++
		for i := range lat.Nodes {
			n := &lat.Nodes[i]
			sat := check.Satisfies(r, n.Pred)
			n.sat = append(n.sat, sat)
			if sat {
				n.Size++
			}
		}
		return true
	}
	if cfg.AllowSelf {
		universe.RunsWithColors(cfg.Msgs, cfg.Procs, cfg.Colors, scan)
	} else {
		universe.RunsNoSelfColored(cfg.Msgs, cfg.Procs, cfg.Colors, scan)
	}
	n := len(lat.Nodes)
	lat.incl = make([][]bool, n)
	for i := range lat.incl {
		lat.incl[i] = make([]bool, n)
		for j := range lat.incl[i] {
			lat.incl[i][j] = subset(lat.Nodes[i].sat, lat.Nodes[j].sat)
		}
	}
	return lat, nil
}

func subset(a, b []bool) bool {
	for k := range a {
		if a[k] && !b[k] {
			return false
		}
	}
	return true
}

// Included reports X_a ⊆ X_b on the universe.
func (l *Lattice) Included(a, b string) (bool, error) {
	ia, ib := l.index(a), l.index(b)
	if ia < 0 || ib < 0 {
		return false, fmt.Errorf("lattice: unknown specification")
	}
	return l.incl[ia][ib], nil
}

// Equivalent reports X_a = X_b on the universe.
func (l *Lattice) Equivalent(a, b string) (bool, error) {
	ab, err := l.Included(a, b)
	if err != nil {
		return false, err
	}
	ba, err := l.Included(b, a)
	if err != nil {
		return false, err
	}
	return ab && ba, nil
}

func (l *Lattice) index(name string) int {
	for i, n := range l.Nodes {
		if n.Name == name {
			return i
		}
	}
	return -1
}

// HasseEdges returns the covering relation: strict inclusions with no
// intermediate node, computed by transitive reduction. Equivalent nodes
// are merged onto the lexicographically-first representative.
func (l *Lattice) HasseEdges() [][2]string {
	// Merge equivalence classes.
	rep := make([]int, len(l.Nodes))
	for i := range rep {
		rep[i] = i
		for j := 0; j < i; j++ {
			if l.incl[i][j] && l.incl[j][i] {
				rep[i] = rep[j]
				break
			}
		}
	}
	g := poset.NewDAG(len(l.Nodes))
	for i := range l.Nodes {
		if rep[i] != i {
			continue
		}
		for j := range l.Nodes {
			if rep[j] != j || i == j {
				continue
			}
			if l.incl[i][j] && !l.incl[j][i] {
				g.AddEdge(i, j)
			}
		}
	}
	reduced, err := poset.TransitiveReduction(g)
	if err != nil {
		return nil // inclusion is antisymmetric after merging: unreachable
	}
	var out [][2]string
	for i := 0; i < reduced.Len(); i++ {
		for _, j := range reduced.Succ(i) {
			out = append(out, [2]string{l.Nodes[i].Name, l.Nodes[j].Name})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// ClassOf returns the names equivalent to the given specification
// (including itself).
func (l *Lattice) ClassOf(name string) []string {
	i := l.index(name)
	if i < 0 {
		return nil
	}
	var out []string
	for j := range l.Nodes {
		if l.incl[i][j] && l.incl[j][i] {
			out = append(out, l.Nodes[j].Name)
		}
	}
	return out
}

// String renders sizes and Hasse edges.
func (l *Lattice) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lattice over %d runs\n", l.Universe)
	for _, n := range l.Nodes {
		fmt.Fprintf(&b, "  |%s| = %d\n", n.Name, n.Size)
	}
	for _, e := range l.HasseEdges() {
		fmt.Fprintf(&b, "  %s ⊂ %s\n", e[0], e[1])
	}
	return b.String()
}
