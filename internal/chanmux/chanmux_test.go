package chanmux

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/netmesh"
	"msgorder/internal/transport"
)

// freePorts reserves n distinct loopback addresses.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// startMuxes boots an n-process multiplexed mesh.
func startMuxes(t *testing.T, n int, mutate func(i int, cfg *Config)) []*Mux {
	t.Helper()
	addrs := freePorts(t, n)
	muxes := make([]*Mux, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			Self:  event.ProcID(i),
			Procs: n,
			Mesh:  netmesh.MeshConfig{Addrs: addrs, Seed: int64(i + 1)},
			Transport: transport.Config{
				RTO: 2 * time.Millisecond, MaxRTO: 30 * time.Millisecond,
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		muxes[i] = m
		t.Cleanup(func() { m.Close() })
	}
	return muxes
}

// openAll opens the same channel spec on every peer.
func openAll(t *testing.T, muxes []*Mux, s Spec) []*Channel {
	t.Helper()
	chans := make([]*Channel, len(muxes))
	for i, m := range muxes {
		ch, err := m.Open(s)
		if err != nil {
			t.Fatalf("peer %d open %q: %v", i, s.Name, err)
		}
		chans[i] = ch
	}
	return chans
}

// lockstep drives msgs through one channel, waiting for each delivery.
func lockstep(t *testing.T, chans []*Channel, msgs []event.Message, perMsg time.Duration) {
	t.Helper()
	want := make([]int, len(chans))
	for i, ch := range chans {
		want[i] = len(ch.Deliveries())
	}
	for _, m := range msgs {
		if err := chans[m.From].Invoke(m); err != nil {
			t.Fatalf("invoke m%d: %v", m.ID, err)
		}
		want[m.To]++
		if err := chans[m.To].WaitDeliveries(want[m.To], perMsg); err != nil {
			t.Fatalf("waiting for m%d on %q: %v", m.ID, chans[m.To].Name(), err)
		}
	}
}

// TestHeterogeneousChannelsShareOneMesh is the core multi-tenant
// scenario: three channels with different guarantee levels — liveness-
// only (tagless witness), causal (causal-rst witness), and a forced
// synchronous protocol — share one 3-process mesh. Each must classify
// to its cheapest witness, deliver independently, and the tagless
// channel must stay overhead-free (no tag bytes, no control wires)
// while its siblings tag and signal on the same connections.
func TestHeterogeneousChannelsShareOneMesh(t *testing.T) {
	muxes := startMuxes(t, 3, nil)
	logs := openAll(t, muxes, Spec{Name: "logs"})
	orders := openAll(t, muxes, Spec{Name: "orders", Spec: "causal-b2"})
	ctrl := openAll(t, muxes, Spec{Name: "ctrl", Proto: "sync"})

	if logs[0].Proto() != "tagless" || orders[0].Proto() != "causal-rst" || ctrl[0].Proto() != "sync" {
		t.Fatalf("witnesses = %s/%s/%s", logs[0].Proto(), orders[0].Proto(), ctrl[0].Proto())
	}

	const per = 5 * time.Second
	for round := 0; round < 20; round++ {
		from := event.ProcID(round % 3)
		to := event.ProcID((round + 1) % 3)
		id := event.MsgID(round)
		lockstep(t, logs, []event.Message{{ID: id, From: from, To: to}}, per)
		lockstep(t, orders, []event.Message{{ID: id, From: from, To: to}}, per)
		lockstep(t, ctrl, []event.Message{{ID: id, From: from, To: to}}, per)
	}

	for i := range muxes {
		for _, ch := range []*Channel{logs[i], orders[i], ctrl[i]} {
			if err := ch.Err(); err != nil {
				t.Fatalf("peer %d channel %q: %v", i, ch.Name(), err)
			}
		}
		s := logs[i].Stats()
		if s.UserTagBytes != 0 || s.ControlMessages != 0 {
			t.Fatalf("peer %d tagless channel paid overhead: tags=%d ctrl=%d",
				i, s.UserTagBytes, s.ControlMessages)
		}
		if muxes[i].UnknownDrops() != 0 {
			t.Fatalf("peer %d dropped %d envelopes as unknown", i, muxes[i].UnknownDrops())
		}
	}
	// All three channels rode the same sockets: one mesh endpoint per
	// process, so at most one accepted connection per peer pair.
	if c := muxes[0].MeshCounters(); c.Accepted > 2 {
		t.Fatalf("mesh 0 accepted %d connections, want ≤ 2 (one per peer)", c.Accepted)
	}
}

// TestChannelCrashRecoversIndependently crashes one channel's node at
// one peer mid-run (WAL-backed) and checks the sibling channel keeps
// delivering during the downtime, and the crashed channel recovers and
// catches up.
func TestChannelCrashRecoversIndependently(t *testing.T) {
	dir := t.TempDir()
	muxes := startMuxes(t, 2, func(i int, cfg *Config) {
		cfg.WALDir = filepath.Join(dir, string(rune('a'+i)))
		if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
			t.Fatal(err)
		}
		cfg.SnapshotEvery = 8
	})
	a := openAll(t, muxes, Spec{Name: "a", Spec: "fifo"})
	b := openAll(t, muxes, Spec{Name: "b"})

	const per = 5 * time.Second
	for i := 0; i < 5; i++ {
		lockstep(t, a, []event.Message{{ID: event.MsgID(i), From: 0, To: 1}}, per)
	}
	if err := a[1].Crash(30 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Sibling channel b delivers while a's peer-1 node is down.
	for i := 0; i < 10; i++ {
		lockstep(t, b, []event.Message{{ID: event.MsgID(i), From: 0, To: 1}}, per)
	}
	// Channel a resumes after recovery: retransmissions carry the rest.
	for i := 5; i < 10; i++ {
		if err := a[0].Invoke(event.Message{ID: event.MsgID(i), From: 0, To: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a[1].WaitDeliveries(10, 10*time.Second); err != nil {
		t.Fatalf("crashed channel did not catch up: %v", err)
	}
	if got := a[1].Stats().Recoveries; got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
	if err := a[1].Err(); err != nil {
		t.Fatalf("recovered channel: %v", err)
	}
}

// TestOpenValidation pins the open-time error surface: bad names,
// duplicate opens, unknown forced protocols, protocols weaker than the
// spec's class, and closed muxes are all refused.
func TestOpenValidation(t *testing.T) {
	muxes := startMuxes(t, 2, nil)
	m := muxes[0]
	if _, err := m.Open(Spec{Name: ""}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := m.Open(Spec{Name: "has space"}); err == nil {
		t.Fatal("name with space accepted")
	}
	if _, err := m.Open(Spec{Name: "x", Proto: "nope"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := m.Open(Spec{Name: "x", Spec: "causal-b2", Proto: "tagless"}); err == nil {
		t.Fatal("tagless protocol accepted for a tagged spec")
	}
	if _, err := m.Open(Spec{Name: "x", Spec: "not a ( spec"}); err == nil {
		t.Fatal("malformed spec accepted")
	}
	if _, err := m.Open(Spec{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(Spec{Name: "x"}); err == nil {
		t.Fatal("duplicate open accepted")
	}
	if _, err := m.Get("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("y"); !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("Get(unknown) = %v, want ErrUnknownChannel", err)
	}
	if err := m.CloseChannel("y"); !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("CloseChannel(unknown) = %v, want ErrUnknownChannel", err)
	}
	if err := m.CloseChannel("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("x"); !errors.Is(err, ErrUnknownChannel) {
		t.Fatal("closed channel still resolvable")
	}
	m.Close()
	if _, err := m.Open(Spec{Name: "z"}); err == nil {
		t.Fatal("open on closed mux accepted")
	}
}

// TestChannelsListing checks the sorted channel inventory.
func TestChannelsListing(t *testing.T) {
	muxes := startMuxes(t, 2, nil)
	openAll(t, muxes, Spec{Name: "zeta"})
	openAll(t, muxes, Spec{Name: "alpha", Spec: "causal-b2"})
	got := muxes[0].Channels()
	if len(got) != 2 || got[0].Name != "alpha" || got[1].Name != "zeta" {
		t.Fatalf("Channels() = %+v", got)
	}
	if got[0].Proto != "causal-rst" || got[0].Class != "tagged" {
		t.Fatalf("alpha info = %+v", got[0])
	}
	if got[0].ID != ChannelID("alpha") || got[0].ID == DefaultChan {
		t.Fatalf("alpha ID = %#x", got[0].ID)
	}
}

// TestUnknownChannelTrafficDropped sends on a channel only one side has
// opened: the other side must count the arrivals as unknown drops and
// deliver nothing, and the sender's retransmissions must flow to it
// once it opens late (the open-race contract).
func TestUnknownChannelTrafficDropped(t *testing.T) {
	muxes := startMuxes(t, 2, nil)
	ch0, err := muxes[0].Open(Spec{Name: "late"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch0.Invoke(event.Message{ID: 0, From: 0, To: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for muxes[1].UnknownDrops() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("peer 1 never saw the unknown-channel envelope")
		}
		time.Sleep(time.Millisecond)
	}
	// Late symmetric open: retransmission delivers the message.
	ch1, err := muxes[1].Open(Spec{Name: "late"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch1.WaitDeliveries(1, 10*time.Second); err != nil {
		t.Fatalf("late-opened channel never caught up: %v", err)
	}
}

// TestChannelIDDeterministicAndReserved pins the ID derivation: stable
// across calls, never the reserved default channel 0.
func TestChannelIDDeterministicAndReserved(t *testing.T) {
	if ChannelID("orders") != ChannelID("orders") {
		t.Fatal("ChannelID not deterministic")
	}
	if ChannelID("orders") == ChannelID("logs") {
		t.Fatal("distinct names collided (astronomically unlikely)")
	}
	for _, name := range []string{"a", "orders", "logs", "ctrl", "late"} {
		if ChannelID(name) == DefaultChan {
			t.Fatalf("ChannelID(%q) hit the reserved default channel", name)
		}
	}
}
