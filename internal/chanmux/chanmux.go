// Package chanmux carries many logical ordering channels over the one-
// TCP-connection-per-peer-pair mesh: a multi-tenant ordering daemon.
// Each channel opens with its own forbidden-predicate specification,
// runs through the paper's classifier, and gets the cheapest sufficient
// protocol instance for its class — so a tagless channel pays no
// tagging or sequencing overhead even while it shares a connection with
// a causal or synchronous channel. Frames carry a channel ID
// (transport.Envelope.Chan); the mesh keeps one outbox FIFO per channel
// and fills batches round-robin, so a backlogged channel cannot
// head-of-line-block its siblings; sequencing, cumulative acks, dedup,
// WAL journaling and crash recovery are all per channel, because every
// channel hosts a full netmesh node (netmesh.NewMuxNode) over the
// shared carrier. That reuse is the correctness argument: a channel's
// user view is produced by exactly the machinery a standalone
// single-spec deployment runs, so the views are byte-identical.
//
// Opening is symmetric by contract: every peer must open the same
// channel name with the same specification (the mesh handshake
// fingerprints only the mux itself — channels come and go while the
// connection lives). Envelopes for a channel this peer has not opened
// are dropped and counted; the sender's reliable sublayer retransmits
// them, so an open racing the first sends loses nothing.
package chanmux

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"msgorder/internal/classify"
	"msgorder/internal/event"
	"msgorder/internal/netmesh"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/registry"
	"msgorder/internal/transport"
)

// ErrUnknownChannel reports an operation addressed to a channel name
// this mux has not opened. Check with errors.Is.
var ErrUnknownChannel = errors.New("chanmux: unknown channel")

// DefaultChan is the reserved channel ID of un-multiplexed traffic; no
// named channel may claim it.
const DefaultChan = uint32(0)

// ChannelID derives a channel's wire ID from its name (FNV-1a, the
// same family event.KeyOf uses) so every peer computes the same ID
// without negotiation. The default channel's ID 0 is reserved: a name
// hashing to 0 is remapped deterministically.
func ChannelID(name string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime32
	}
	if h == DefaultChan {
		h = prime32
	}
	return h
}

// ValidName reports whether a channel name is usable: non-empty and
// limited to letters, digits, '.', '_' and '-', so names embed safely
// in WAL filenames, metric labels and the mod daemon's comma-separated
// -channels flag.
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Config configures one process's end of a multiplexed mesh.
type Config struct {
	// Self is this process's id; Procs the mesh size.
	Self  event.ProcID
	Procs int
	// Mesh configures the shared socket layer. Self is forced; an empty
	// Fingerprint defaults to Fingerprint("mux", "", Procs) — channels
	// are not part of the handshake.
	Mesh netmesh.MeshConfig
	// Transport tunes every channel's reliable sublayer.
	Transport transport.Config
	// WALDir, when non-empty, gives each channel a file-backed journal
	// at <WALDir>/<name>.wal; empty keeps journals in memory.
	WALDir string
	// SnapshotEvery is each channel's WAL checkpoint cadence (0 = never).
	SnapshotEvery int
	// Tracer and Metrics, when non-nil, instrument every channel: trace
	// records are stamped with the channel name (obs.WithChannel) and
	// histograms are labelled "proto@channel", so one merged timeline
	// and one registry still tell the tenants apart.
	Tracer  obs.Tracer
	Metrics *obs.Registry
}

// Spec describes one channel to open.
type Spec struct {
	// Name is the channel's mesh-wide identity.
	Name string
	// Spec is the channel's forbidden-predicate specification (catalog
	// name or expression; empty forbids nothing). The classifier picks
	// the cheapest sufficient protocol for its class.
	Spec string
	// Proto, when non-empty, forces a catalog protocol instead of the
	// classifier's witness; with Spec also set, a protocol weaker than
	// the specification's class is refused.
	Proto string
}

// Mux is one process's end of a multiplexed mesh: the shared socket
// carrier plus the set of open channels. Safe for concurrent use.
type Mux struct {
	cfg  Config
	mesh *netmesh.Mesh

	mu     sync.RWMutex
	byID   map[uint32]*Channel
	byName map[string]*Channel
	// pending reserves names/IDs whose node is still booting, so
	// concurrent Opens race cleanly while receive never sees a channel
	// without a live node (traffic arriving mid-boot counts as unknown
	// drops and is healed by retransmission once the open completes).
	pending map[string]uint32
	closed  bool

	// unknownDrops counts arriving envelopes for channel IDs not open
	// here — open races and traffic outliving a close.
	unknownDrops atomic.Uint64
}

// New binds the shared mesh endpoint. Channels are opened afterwards
// with Open; Close tears everything down.
func New(cfg Config) (*Mux, error) {
	if cfg.Procs <= 0 || int(cfg.Self) < 0 || int(cfg.Self) >= cfg.Procs {
		return nil, fmt.Errorf("chanmux: bad identity %d/%d", cfg.Self, cfg.Procs)
	}
	m := &Mux{
		cfg:     cfg,
		byID:    make(map[uint32]*Channel),
		byName:  make(map[string]*Channel),
		pending: make(map[string]uint32),
	}
	mcfg := cfg.Mesh
	mcfg.Self = cfg.Self
	if mcfg.Fingerprint == "" {
		mcfg.Fingerprint = netmesh.Fingerprint("mux", "", cfg.Procs)
	}
	mesh, err := netmesh.NewMesh(mcfg, m.receive)
	if err != nil {
		return nil, err
	}
	m.mesh = mesh
	return m, nil
}

// receive demultiplexes one arriving batch: envelopes are grouped by
// channel ID (preserving per-channel arrival order) and handed to each
// channel's node; envelopes for unopened channels are dropped and
// counted.
func (m *Mux) receive(envs []transport.Envelope) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	// Fast path: the whole batch is one channel (common — batches are
	// per-connection and traffic is often bursty per tenant).
	uniform := true
	for i := 1; i < len(envs); i++ {
		if envs[i].Chan != envs[0].Chan {
			uniform = false
			break
		}
	}
	if uniform {
		if len(envs) == 0 {
			return
		}
		if ch := m.byID[envs[0].Chan]; ch != nil {
			ch.node.HandleEnvelopes(envs)
		} else {
			m.unknownDrops.Add(uint64(len(envs)))
		}
		return
	}
	split := make(map[uint32][]transport.Envelope)
	for _, e := range envs {
		split[e.Chan] = append(split[e.Chan], e)
	}
	for id, part := range split {
		if ch := m.byID[id]; ch != nil {
			ch.node.HandleEnvelopes(part)
		} else {
			m.unknownDrops.Add(uint64(len(part)))
		}
	}
}

// Open starts a channel: the spec is resolved to its cheapest
// sufficient protocol (or the forced one, checked against the spec's
// class), and a full netmesh node is booted for it over the shared
// carrier. Every peer must open the same name with the same Spec.
func (m *Mux) Open(s Spec) (*Channel, error) {
	if !ValidName(s.Name) {
		return nil, fmt.Errorf("chanmux: invalid channel name %q", s.Name)
	}
	entry, class, err := registry.ForSpec(s.Spec)
	if err != nil {
		return nil, fmt.Errorf("chanmux: channel %q: %w", s.Name, err)
	}
	if s.Proto != "" {
		forced, ok := registry.ByName(s.Proto)
		if !ok {
			return nil, fmt.Errorf("chanmux: channel %q: unknown protocol %q", s.Name, s.Proto)
		}
		if s.Spec != "" {
			required, err := registry.RequiredRank(class)
			if err != nil {
				return nil, fmt.Errorf("chanmux: channel %q: %w", s.Name, err)
			}
			if d, ok := forced.Maker().(protocol.Describer); ok && int(d.Describe().Class) < required {
				return nil, fmt.Errorf("chanmux: channel %q: protocol %s is class %s, weaker than spec %q requires",
					s.Name, s.Proto, d.Describe().Class, s.Spec)
			}
		}
		entry = forced
	}
	id := ChannelID(s.Name)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("chanmux: mux closed")
	}
	if _, dup := m.byName[s.Name]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("chanmux: channel %q already open", s.Name)
	}
	if prev, collide := m.byID[id]; collide {
		m.mu.Unlock()
		return nil, fmt.Errorf("chanmux: channel %q collides with %q on ID %#x", s.Name, prev.name, id)
	}
	if _, dup := m.pending[s.Name]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("chanmux: channel %q already open", s.Name)
	}
	for prev, pid := range m.pending {
		if pid == id {
			m.mu.Unlock()
			return nil, fmt.Errorf("chanmux: channel %q collides with %q on ID %#x", s.Name, prev, id)
		}
	}
	// Reserve the name/ID before the (slow) node boot so concurrent
	// Opens of the same name race cleanly; published below only once
	// the node is live, so receive never demuxes into a half-built
	// channel.
	m.pending[s.Name] = id
	m.mu.Unlock()

	wal := ""
	if m.cfg.WALDir != "" {
		wal = filepath.Join(m.cfg.WALDir, s.Name+".wal")
	}
	node, err := netmesh.NewMuxNode(netmesh.NodeConfig{
		Self:          m.cfg.Self,
		Procs:         m.cfg.Procs,
		Maker:         entry.Maker,
		Transport:     m.cfg.Transport,
		WALPath:       wal,
		SnapshotEvery: m.cfg.SnapshotEvery,
		Tracer:        obs.WithChannel(m.cfg.Tracer, s.Name),
		Metrics:       m.cfg.Metrics,
		ProbeLabel:    entry.Name + "@" + s.Name,
	}, func(e transport.Envelope) {
		e.Chan = id
		m.mesh.Send(e)
	})
	if err != nil {
		m.mu.Lock()
		delete(m.pending, s.Name)
		m.mu.Unlock()
		return nil, fmt.Errorf("chanmux: channel %q: %w", s.Name, err)
	}
	ch := &Channel{name: s.Name, id: id, spec: s.Spec, proto: entry.Name, class: class, mux: m, node: node}
	m.mu.Lock()
	delete(m.pending, s.Name)
	if m.closed {
		m.mu.Unlock()
		node.Close()
		return nil, fmt.Errorf("chanmux: mux closed")
	}
	m.byName[s.Name] = ch
	m.byID[id] = ch
	m.mu.Unlock()
	return ch, nil
}

// Get resolves an open channel by name; unknown names yield a typed
// ErrUnknownChannel.
func (m *Mux) Get(name string) (*Channel, error) {
	m.mu.RLock()
	ch := m.byName[name]
	m.mu.RUnlock()
	if ch == nil || ch.node == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownChannel, name)
	}
	return ch, nil
}

// CloseChannel stops a channel and forgets it; later traffic for its ID
// counts as unknown drops at this peer.
func (m *Mux) CloseChannel(name string) error {
	m.mu.Lock()
	ch := m.byName[name]
	if ch != nil {
		delete(m.byName, name)
		delete(m.byID, ch.id)
	}
	m.mu.Unlock()
	if ch == nil || ch.node == nil {
		return fmt.Errorf("%w: %q", ErrUnknownChannel, name)
	}
	return ch.node.Close()
}

// Info describes one open channel.
type Info struct {
	// Name and ID identify the channel.
	Name string
	ID   uint32
	// Proto is the protocol instance serving it; Spec the specification
	// it was opened with; Class the classifier's verdict on that spec.
	Proto string
	Spec  string
	Class string
}

// Channels lists the open channels sorted by name.
func (m *Mux) Channels() []Info {
	m.mu.RLock()
	out := make([]Info, 0, len(m.byName))
	for _, ch := range m.byName {
		if ch.node == nil {
			continue
		}
		out = append(out, Info{Name: ch.name, ID: ch.id, Proto: ch.proto,
			Spec: ch.spec, Class: ch.class.String()})
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Addr returns the shared mesh endpoint's bound address.
func (m *Mux) Addr() string { return m.mesh.Addr() }

// Self returns this process's id.
func (m *Mux) Self() event.ProcID { return m.cfg.Self }

// Procs returns the mesh size.
func (m *Mux) Procs() int { return m.cfg.Procs }

// MeshCounters returns the shared carrier's socket tallies.
func (m *Mux) MeshCounters() netmesh.Counters { return m.mesh.Counters() }

// UnknownDrops returns how many arriving envelopes named a channel not
// open at this peer.
func (m *Mux) UnknownDrops() uint64 { return m.unknownDrops.Load() }

// Err surfaces a fatal mesh condition (handshake rejection) or the
// first failed channel's error.
func (m *Mux) Err() error {
	if err := m.mesh.Rejected(); err != nil {
		return err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, ch := range m.byName {
		if ch.node == nil {
			continue
		}
		if err := ch.node.Err(); err != nil {
			return fmt.Errorf("channel %q: %w", ch.name, err)
		}
	}
	return nil
}

// Close stops every channel, then the shared mesh.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	chans := make([]*Channel, 0, len(m.byName))
	for _, ch := range m.byName {
		chans = append(chans, ch)
	}
	m.byName = make(map[string]*Channel)
	m.byID = make(map[uint32]*Channel)
	m.mu.Unlock()
	var first error
	for _, ch := range chans {
		if ch.node == nil {
			continue
		}
		if err := ch.node.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := m.mesh.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Channel is one logical ordering domain on the mux: a full protocol
// node (its own sequencing, acks, WAL, crash recovery) sharing the
// carrier with its siblings.
type Channel struct {
	name  string
	id    uint32
	spec  string
	proto string
	class classify.Class
	node  *netmesh.Node
	mux   *Mux
}

// Name returns the channel's mesh-wide identity.
func (c *Channel) Name() string { return c.name }

// ID returns the channel's wire ID (ChannelID of its name).
func (c *Channel) ID() uint32 { return c.id }

// Proto names the protocol instance serving the channel.
func (c *Channel) Proto() string { return c.proto }

// SpecString returns the specification the channel was opened with.
func (c *Channel) SpecString() string { return c.spec }

// Class returns the classifier's verdict on the channel's spec.
func (c *Channel) Class() classify.Class { return c.class }

// Invoke places a user message on the channel.
func (c *Channel) Invoke(msg event.Message) error { return c.node.Invoke(msg) }

// Deliveries returns the channel's local delivery sequence.
func (c *Channel) Deliveries() []event.MsgID { return c.node.Deliveries() }

// Events returns the channel's local user-visible event log.
func (c *Channel) Events() []event.Event { return c.node.Events() }

// Stats returns the channel's protocol tallies.
func (c *Channel) Stats() protocol.Stats { return c.node.Stats() }

// TransportCounters returns the channel's reliable-sublayer tallies.
func (c *Channel) TransportCounters() transport.Counters { return c.node.TransportCounters() }

// WaitDeliveries blocks until the channel has delivered at least k
// messages locally.
func (c *Channel) WaitDeliveries(k int, timeout time.Duration) error {
	return c.node.WaitDeliveries(k, timeout)
}

// Crash tears the channel's protocol instance down for downtime, then
// recovers it from its WAL — the channel's siblings keep running.
func (c *Channel) Crash(downtime time.Duration) error { return c.node.Crash(downtime) }

// Err surfaces the channel node's fatal error, if any.
func (c *Channel) Err() error { return c.node.Err() }
