module msgorder

go 1.22
