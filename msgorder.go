// Package msgorder is a library for specifying, classifying, checking and
// executing message-ordering guarantees in distributed systems. It
// implements the framework of V. V. Murty and V. K. Garg,
// "Characterization of Message Ordering Specifications and Protocols"
// (ICDCS 1997):
//
//   - Specify an ordering as a forbidden predicate — an existential
//     conjunction of causality atoms over message variables, with
//     optional process and color guards:
//
//     p, err := msgorder.Parse("x, y : x.s -> y.s && y.r -> x.r")
//
//   - Classify it: is it implementable, and does it need nothing, tags on
//     user messages, or control messages?
//
//     res, err := msgorder.Classify(p)   // res.Class == msgorder.Tagged
//
//   - Check recorded runs against it, and construct the paper's witness
//     runs (logically synchronous / causally ordered runs that violate a
//     too-strong specification).
//
//   - Execute real protocols (tagless, FIFO, three causal-ordering
//     algorithms including causal broadcast, flush channels, k-weaker
//     FIFO, and two logically synchronous protocols) over a deterministic
//     simulator, exhaustive schedule exploration, a live
//     goroutine-per-process network, or a real multi-process TCP mesh
//     (NewMeshNode and the cmd/mod daemon), and verify the runs they
//     produce — or synthesize a protocol directly from a predicate with
//     GenerateProtocol.
//
// The subpackages under internal/ carry the implementation; this package
// re-exports the stable surface.
package msgorder

import (
	"msgorder/internal/catalog"
	"msgorder/internal/chanmux"
	"msgorder/internal/check"
	"msgorder/internal/classify"
	"msgorder/internal/conformance"
	"msgorder/internal/crash"
	"msgorder/internal/dsim"
	"msgorder/internal/event"
	"msgorder/internal/lattice"
	"msgorder/internal/member"
	"msgorder/internal/netmesh"
	"msgorder/internal/obs"
	"msgorder/internal/predicate"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/fifo"
	"msgorder/internal/protocols/flush"
	"msgorder/internal/protocols/handoff"
	"msgorder/internal/protocols/kweaker"
	syncproto "msgorder/internal/protocols/sync"
	"msgorder/internal/protocols/tagless"
	"msgorder/internal/run"
	"msgorder/internal/spec"
	"msgorder/internal/synth"
	"msgorder/internal/trace"
	"msgorder/internal/transport"
	"msgorder/internal/universe"
	"msgorder/internal/userview"
)

// Core model types.
type (
	// ProcID identifies a process (0..n-1).
	ProcID = event.ProcID
	// MsgID identifies a message within a run.
	MsgID = event.MsgID
	// Color is an optional message attribute used by guarded
	// specifications.
	Color = event.Color
	// Message carries a message's immutable attributes.
	Message = event.Message
	// Event is one of the four system events of a message.
	Event = event.Event
	// Kind distinguishes invoke/send/receive/deliver.
	Kind = event.Kind
)

// Message colors.
const (
	ColorNone  = event.ColorNone
	ColorRed   = event.ColorRed
	ColorBlue  = event.ColorBlue
	ColorGreen = event.ColorGreen
)

// Event kinds.
const (
	Invoke  = event.Invoke
	Send    = event.Send
	Receive = event.Receive
	Deliver = event.Deliver
)

// Specification types.
type (
	// Predicate is a forbidden predicate.
	Predicate = predicate.Predicate
	// PredicateBuilder assembles predicates programmatically.
	PredicateBuilder = predicate.Builder
	// Part selects a message variable's send or deliver event.
	Part = predicate.Part
	// Classification is the classifier's full result.
	Classification = classify.Result
	// Class is the protocol class a specification requires.
	Class = classify.Class
	// CatalogEntry is a named specification from the paper.
	CatalogEntry = catalog.Entry
)

// Protocol classes.
const (
	Unimplementable = classify.Unimplementable
	Tagless         = classify.Tagless
	Tagged          = classify.Tagged
	General         = classify.General
)

// Event parts for the predicate builder.
const (
	S = predicate.S // send
	R = predicate.R // deliver
)

// Run types.
type (
	// Run is a user-view run: the partial order of send and deliver
	// events the user observes.
	Run = userview.Run
	// SystemRun is a full four-event system run.
	SystemRun = run.Run
	// Match is a satisfying assignment of a predicate in a run.
	Match = check.Match
)

// Parse parses a forbidden predicate from its text syntax, e.g.
// "x, y : x.s -> y.s && y.r -> x.r".
func Parse(src string) (*Predicate, error) { return predicate.Parse(src) }

// MustParse is Parse panicking on error, for constants and tests.
func MustParse(src string) *Predicate { return predicate.MustParse(src) }

// NewPredicate starts a programmatic predicate builder over the given
// variables.
func NewPredicate(vars ...string) *PredicateBuilder { return predicate.NewBuilder(vars...) }

// Classify runs the paper's classification algorithm (Theorems 2-4) on a
// forbidden predicate.
func Classify(p *Predicate) (*Classification, error) { return classify.Classify(p) }

// NewRun builds and validates a user-view run from a message table and
// per-process sequences of send/deliver events.
func NewRun(msgs []Message, procs [][]Event) (*Run, error) {
	return userview.New(msgs, procs)
}

// Satisfies reports whether a complete run belongs to the predicate's
// specification set X_B.
func Satisfies(r *Run, p *Predicate) bool { return check.Satisfies(r, p) }

// FindViolation searches a run for an instantiation of the forbidden
// predicate.
func FindViolation(r *Run, p *Predicate) (Match, bool) { return check.FindViolation(r, p) }

// Catalog returns the paper's specification catalog.
func Catalog() []CatalogEntry { return catalog.Entries() }

// CatalogByName looks up one catalog entry.
func CatalogByName(name string) (CatalogEntry, bool) { return catalog.ByName(name) }

// Witness constructions (Theorems 2 and 4). Each returns a run in the
// named limit set that satisfies the predicate, proving the containment
// X_limit ⊆ X_B false.
var (
	// SyncWitness returns a logically synchronous run satisfying p
	// (exists iff p's graph is acyclic — then p is unimplementable).
	SyncWitness = universe.SyncWitness
	// COWitness returns a causally ordered run satisfying p (exists when
	// p has no cycle of order ≤ 1 — then p needs control messages).
	COWitness = universe.COWitness
	// AsyncWitness returns any valid run satisfying p (exists iff p is
	// satisfiable — then p needs some protocol).
	AsyncWitness = universe.AsyncWitness
)

// Diagram renders a run as an ASCII time diagram in the paper's style.
func Diagram(r *Run) string { return trace.UserDiagram(r) }

// SystemDiagram renders a system run as an ASCII time diagram.
func SystemDiagram(r *SystemRun) string { return trace.SystemDiagram(r) }

// Protocol execution.
type (
	// ProtocolMaker constructs protocol instances for the simulators.
	ProtocolMaker = protocol.Maker
	// SimConfig drives one simulated workload.
	SimConfig = conformance.Config
	// SimResult is a completed simulation.
	SimResult = dsim.Result
	// Stats aggregates protocol overhead.
	Stats = protocol.Stats
	// FaultPlan configures lossy-network fault injection for Simulate
	// (set SimConfig.Faults): seeded drop/duplicate/delay rates and
	// healing partitions. The reliable transport sublayer keeps the
	// protocols on the paper's channel model regardless.
	FaultPlan = transport.FaultPlan
	// FaultPartition is a temporary network cut inside a FaultPlan.
	FaultPartition = transport.Partition
	// FaultCell is one cell of a FaultSweep: plan, runs, violations and
	// summed statistics.
	FaultCell = conformance.FaultCell
	// CrashPlan schedules process crashes for Simulate (set
	// SimConfig.Crashes): seeded crash-stop / crash-restart specs,
	// checkpoint cadence, and failure-detector tuning. Restarted
	// processes recover their ordering state from a write-ahead log.
	CrashPlan = crash.Plan
	// CrashSpec schedules one crash of one process within a CrashPlan.
	CrashSpec = crash.Spec
	// CrashDetectorConfig tunes the crash failure detector.
	CrashDetectorConfig = crash.DetectorConfig
	// CrashCell is one cell of a CrashSweep: plan, runs, violations,
	// undelivered tally and summed statistics.
	CrashCell = conformance.CrashCell
)

// Crash plan constructors.
var (
	// CrashRestartStagger crashes each listed process once, staggered
	// along the adversary's release sequence, each restarting after the
	// downtime.
	CrashRestartStagger = crash.RestartStagger
	// CrashStopOne kills one process forever at the given release.
	CrashStopOne = crash.StopOne
)

// Protocols returns the built-in protocol registry: name -> maker.
func Protocols() map[string]ProtocolMaker {
	return map[string]ProtocolMaker{
		"tagless":    tagless.Maker,
		"fifo":       fifo.Maker,
		"causal-rst": causal.RSTMaker,
		"causal-ses": causal.SESMaker,
		"causal-bss": causal.BSSMaker,
		"sync":       syncproto.Maker,
		"sync-ra":    syncproto.RAMaker,
		"flush":      flush.Maker,
		"kweaker-1":  kweaker.Maker(1),
		"kweaker-2":  kweaker.Maker(2),
		"handoff":    handoff.Maker,
	}
}

// Simulate runs one workload and returns the recorded run, statistics
// and liveness report. With cfg.Faults nil it uses the deterministic
// simulator; with a FaultPlan it runs on the live harness over a lossy
// network with reliable-transport recovery.
func Simulate(cfg SimConfig) (*SimResult, error) { return conformance.Run(cfg) }

// FaultSweep runs the workload under each fault plan (live harness),
// checking every run against pred (nil skips checking), and returns one
// cell per plan. See conformance.FaultMatrix.
func FaultSweep(cfg SimConfig, plans []FaultPlan, seeds int, pred *Predicate) ([]FaultCell, error) {
	return conformance.FaultMatrix(cfg, plans, seeds, pred)
}

// CrashSweep runs the workload under each crash plan (live harness),
// checking every run against pred (nil skips checking), and returns one
// cell per plan. Crash-restart plans must still deliver everything;
// crash-stop plans tolerate mail lost with the dead process. See
// conformance.CrashMatrix.
func CrashSweep(cfg SimConfig, plans []CrashPlan, seeds int, pred *Predicate) ([]CrashCell, error) {
	return conformance.CrashMatrix(cfg, plans, seeds, pred)
}

// ExploreConfig drives exhaustive schedule exploration: the workload is
// replayed under every possible network arrival order (small-scope model
// checking).
type ExploreConfig = dsim.ExploreConfig

// ExploreRequest is one user invocation in an exploration workload.
type ExploreRequest = dsim.Request

// Explore enumerates every arrival order of the workload, calling visit
// with each completed run. Returns the number of schedules visited.
func Explore(cfg ExploreConfig, visit func(*SimResult) bool) (int, error) {
	return dsim.Explore(cfg, visit)
}

// Exploration errors (see the internal/dsim package docs).
var (
	// ErrExploreLimit marks a truncated search: MaxRuns complete
	// schedules were visited, so the result is a sample, not a proof.
	ErrExploreLimit = dsim.ErrExploreLimit
	// ErrDivergentReplay reports a nondeterministic Maker or MakeHook:
	// replaying a schedule prefix made different choices than its
	// parent, so the schedule tree is ill-defined.
	ErrDivergentReplay = dsim.ErrDivergentReplay
)

// ExploreStats reports how an exploration covered the schedule space:
// distinct complete runs, interior states, replays performed, and how
// much the deduplication and commutativity reductions pruned.
type ExploreStats = dsim.ExploreStats

// ExploreWithStats is Explore returning the full search statistics.
func ExploreWithStats(cfg ExploreConfig, visit func(*SimResult) bool) (ExploreStats, error) {
	return dsim.ExploreWithStats(cfg, visit)
}

// Observability. The obs layer records causally stamped event timelines
// (invoke/send/receive/deliver, inhibition spans, transport faults,
// explorer expansions) and aggregate distributions. Attach a collector
// and registry to a SimConfig with WithTracer/WithMetrics, then export
// the records for Perfetto:
//
//	tr, met := msgorder.NewTraceCollector(), msgorder.NewMetricsRegistry()
//	res, err := msgorder.Simulate(cfg.WithTracer(tr).WithMetrics(met))
//	msgorder.WriteChromeTrace(f, tr.Records())
type (
	// Tracer receives structured trace records.
	Tracer = obs.Tracer
	// TraceRecord is one vector-clock-stamped trace event.
	TraceRecord = obs.Record
	// TraceOp identifies what a trace record describes.
	TraceOp = obs.Op
	// TraceCollector is an in-memory Tracer.
	TraceCollector = obs.Collector
	// MetricsRegistry aggregates counters, gauges and histograms.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a JSON-marshalable registry snapshot.
	MetricsSnapshot = obs.Snapshot
)

// NewTraceCollector returns an empty in-memory tracer.
func NewTraceCollector() *TraceCollector { return obs.NewCollector() }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WriteChromeTrace exports trace records as Chrome trace-event JSON
// (loadable in Perfetto and chrome://tracing, one track per process).
var WriteChromeTrace = obs.WriteChromeTrace

// WriteTraceNDJSON exports trace records as newline-delimited JSON.
var WriteTraceNDJSON = obs.WriteNDJSON

// ValidateChromeTrace structurally checks an exported Chrome trace:
// well-formed JSON, monotone per-track timestamps, and every deliver
// preceded by its send.
var ValidateChromeTrace = obs.ValidateChromeTrace

// EncodeRun serializes a user-view run to JSON.
func EncodeRun(r *Run) ([]byte, error) { return trace.EncodeUserView(r) }

// DecodeRun parses and revalidates a serialized user-view run.
func DecodeRun(data []byte) (*Run, error) { return trace.DecodeUserView(data) }

// Spec is a composite specification: a conjunction of forbidden
// predicates. Its protocol class is the maximum over components.
type Spec = spec.Spec

// NewSpec builds a composite specification.
func NewSpec(name string, preds ...*Predicate) (*Spec, error) {
	return spec.New(name, preds...)
}

// SynthPlan describes how GenerateProtocol implemented a specification.
type SynthPlan = synth.Plan

// GenerateProtocol compiles a forbidden predicate into an executing
// protocol (the companion-paper direction): the trivial protocol for
// vacuous specifications, a per-channel sequence protocol for
// same-channel patterns like FIFO and local flush, and full causal
// ordering for every other tagged specification. Specifications needing
// control messages or unimplementable ones return an error.
func GenerateProtocol(p *Predicate) (ProtocolMaker, *SynthPlan, error) {
	return synth.Generate(p)
}

// Lattice is the empirical inclusion lattice of specification sets over
// a bounded universe of runs.
type Lattice = lattice.Lattice

// LatticeConfig bounds the universe ComputeLattice enumerates.
type LatticeConfig = lattice.Config

// ComputeLattice evaluates the named specifications over a bounded
// universe and returns their inclusion structure (sizes, pairwise
// subset tests, Hasse edges).
func ComputeLattice(cfg LatticeConfig, specs map[string]*Predicate) (*Lattice, error) {
	return lattice.Compute(cfg, specs)
}

// Real-network runtime. A MeshNode hosts one process of a protocol
// over real TCP sockets: length-prefixed frames, seeded reconnect
// backoff, a handshake that refuses mismatched fingerprints, and the
// same reliable-transport and crash/recovery semantics as the
// in-memory harness. The cmd/mod daemon wraps one node per OS
// process; NetSweep closes the loop by asserting sim and mesh produce
// identical user views.
type (
	// MeshNode is one process of a protocol mesh over real TCP.
	MeshNode = netmesh.Node
	// MeshNodeConfig configures one mesh node (self, maker, mesh,
	// transport tuning, optional WAL).
	MeshNodeConfig = netmesh.NodeConfig
	// MeshConfig is the socket-layer part of a node config: the full
	// address table, the shared fingerprint, and optional fault
	// injection.
	MeshConfig = netmesh.MeshConfig
	// MeshCounters tallies socket-layer activity (dials, frames,
	// bytes, injected faults).
	MeshCounters = netmesh.Counters
	// NetProtocol names one protocol for NetSweep.
	NetProtocol = conformance.NetProtocol
	// NetSweepConfig shapes a cross-runtime sweep.
	NetSweepConfig = conformance.NetMatrixConfig
	// NetCell is one (protocol, disturbance) cell of a sweep.
	NetCell = conformance.NetCell
)

// MeshFingerprint derives the handshake fingerprint nodes exchange;
// every node of one mesh must present the same value.
var MeshFingerprint = netmesh.Fingerprint

// NewMeshNode starts one mesh node: it binds its listener, dials its
// peers, and begins executing the protocol.
func NewMeshNode(cfg MeshNodeConfig) (*MeshNode, error) { return netmesh.NewNode(cfg) }

// NetSweep runs the cross-runtime conformance sweep: each protocol's
// seeded lockstep workload executes on the in-memory sim and on a
// loopback TCP mesh under clean, lossy, and crash-restart cells; each
// cell reports whether the user views matched byte for byte.
func NetSweep(cfg NetSweepConfig, protos []NetProtocol) ([]NetCell, error) {
	return conformance.NetMatrix(cfg, protos)
}

// Sustained load. Where NetSweep drives lockstep workloads to compare
// user views, the load runners invoke the whole seeded workload
// open-loop and let the high-throughput path — per-peer frame
// batching, pooled codec buffers, pipelined cumulative acks, and an
// optionally group-committed WAL — drain it at full speed. Every run
// still validates its user view before reporting a number.
type (
	// LoadConfig shapes one open-loop load run (size, seed, optional
	// file-backed group-commit WALs).
	LoadConfig = conformance.LoadConfig
	// LoadResult is one (runtime, protocol) row: throughput,
	// invoke→deliver latency quantiles, and the batching counters that
	// explain them.
	LoadResult = conformance.LoadResult
	// WALGroupCommit tunes group-commit batching of a file-backed
	// journal (max pending entries, flush window, per-flush fsync).
	WALGroupCommit = crash.GroupCommit
	// WALStats tallies a journal's appends against its file flushes;
	// Appends ≫ Flushes is group commit working.
	WALStats = crash.WALStats
)

// RunLoadSim measures sustained open-loop throughput on the in-memory
// live harness.
func RunLoadSim(p NetProtocol, cfg LoadConfig) (LoadResult, error) {
	return conformance.RunLoadSim(p, cfg)
}

// RunLoadMesh measures sustained open-loop throughput on a loopback
// TCP mesh — the batched, pooled, pipelined-ack hot path.
func RunLoadMesh(p NetProtocol, cfg LoadConfig) (LoadResult, error) {
	return conformance.RunLoadMesh(p, cfg)
}

// Dynamic membership. A MemberTracker holds the epoch-numbered group
// view; joiners install a MemberCheckpoint captured from a departing
// member's WAL (snapshot + verified suffix replay) so the successor's
// user view splices byte-identically onto the departed incarnation's.
// A MemberEvictor turns sustained heartbeat silence into an
// administrative eviction. ChurnSweep closes the loop: every protocol
// across every membership operation under topology-shaped network
// environments (geo-latency zones, asymmetric one-way partitions,
// slow links — see the FaultPlan Zones/OneWay/SlowLinks fields).
type (
	// MemberView is one epoch-numbered membership view.
	MemberView = member.View
	// MemberTracker applies join/leave/evict transitions and numbers
	// the resulting views with monotonic epochs.
	MemberTracker = member.Tracker
	// MemberCheckpoint is a protocol-correct state-transfer artifact
	// captured from a WAL at an epoch boundary.
	MemberCheckpoint = member.Checkpoint
	// MemberEvictor watches a crash detector and administratively
	// evicts processes whose heartbeat silence outlasts its grace.
	MemberEvictor = member.Evictor
	// MemberEvictorConfig tunes the evictor's scan interval and grace.
	MemberEvictorConfig = member.EvictorConfig
	// StaleEpochError reports an operation pinned to a superseded
	// membership epoch.
	StaleEpochError = member.StaleEpochError
	// OneWayPartition is an asymmetric cut inside a FaultPlan: frames
	// From→To drop while the reverse direction flows.
	OneWayPartition = transport.OneWayPartition
	// SlowLink degrades one direction of one link inside a FaultPlan.
	SlowLink = transport.SlowLink
	// ChurnProtocol names one protocol for ChurnSweep.
	ChurnProtocol = conformance.ChurnProtocol
	// ChurnSweepConfig shapes the churn matrix.
	ChurnSweepConfig = conformance.ChurnConfig
	// ChurnCell is one (protocol, op, env) churn outcome.
	ChurnCell = conformance.ChurnCell
)

// NewMemberTracker seeds a tracker at epoch 0 with the initial members.
func NewMemberTracker(capacity int, initial []ProcID) *MemberTracker {
	return member.NewTracker(capacity, initial)
}

// ChurnOps lists the membership operations ChurnSweep exercises.
func ChurnOps() []string { return conformance.ChurnOps() }

// ChurnEnvs lists ChurnSweep's topology-shaped network environments.
func ChurnEnvs() []string { return conformance.ChurnEnvs() }

// ChurnSweep runs the membership-churn conformance matrix: each
// protocol executes on a loopback TCP mesh per (operation,
// environment) cell with one membership change mid-run, and the
// surviving members' user view is validated byte-for-byte against the
// in-memory sim reference.
func ChurnSweep(cfg ChurnSweepConfig, protos []ChurnProtocol) ([]ChurnCell, error) {
	return conformance.ChurnMatrix(cfg, protos)
}

// Multiplexed channels. A ChannelMux carries many logical channels —
// each with its own forbidden-predicate specification, classifier
// verdict, and minimal protocol witness — over the existing
// one-TCP-connection-per-peer-pair mesh. Channels are full protocol
// instances (own sequencing, cumulative acks, WAL namespace, crash
// recovery), so a tagless channel pays zero ordering overhead even
// while a logically synchronous channel signals on the same sockets,
// and per-channel outboxes keep a partitioned channel from head-of-
// line-blocking its siblings. MuxSweep closes the loop: every channel
// of a shared mesh must reproduce its standalone run's user view byte
// for byte; MuxLoad measures what sharing the wire costs.
type (
	// ChannelMux multiplexes logical channels over one mesh endpoint.
	ChannelMux = chanmux.Mux
	// ChannelMuxConfig configures a mux endpoint (self, mesh address
	// table, transport tuning, per-channel WAL directory).
	ChannelMuxConfig = chanmux.Config
	// ChannelSpec opens one channel: a name, an optional
	// specification, and an optional forced protocol.
	ChannelSpec = chanmux.Spec
	// Channel is one logical channel — a full protocol instance
	// multiplexed over the shared mesh.
	Channel = chanmux.Channel
	// ChannelInfo describes one open channel (name, wire ID, witness
	// protocol, spec, class).
	ChannelInfo = chanmux.Info
	// MuxCell is one (channel, disturbance) cell of a MuxSweep.
	MuxCell = conformance.MuxCell
	// MuxLoadRow is one channel's row of a MuxLoad overhead
	// comparison (solo vs shared).
	MuxLoadRow = conformance.MuxLoadRow
)

// ErrUnknownChannel reports an operation on a channel the mux has not
// opened.
var ErrUnknownChannel = chanmux.ErrUnknownChannel

// NewChannelMux starts a multiplexed mesh endpoint; channels open (and
// close) independently afterwards via Open and CloseChannel.
func NewChannelMux(cfg ChannelMuxConfig) (*ChannelMux, error) { return chanmux.New(cfg) }

// MuxSweep runs the multi-tenant conformance sweep: every protocol
// becomes one channel on a shared loopback TCP mesh, the channels'
// seeded lockstep workloads interleave, and each channel's user view
// is diffed byte-for-byte against a standalone in-memory sim run —
// under clean, lossy, and crash-restart cells.
func MuxSweep(cfg NetSweepConfig, protos []NetProtocol) ([]MuxCell, error) {
	return conformance.MuxMatrix(cfg, protos)
}

// MuxLoad measures multiplexing overhead: the measured protocol's
// channel runs an open-loop workload solo on a mux mesh and again
// sharing the mesh with a companion channel under equal load. A
// tagless measured channel must report identical per-message overhead
// in both rows.
func MuxLoad(cfg LoadConfig, measured, companion NetProtocol) ([]MuxLoadRow, error) {
	return conformance.MuxLoad(cfg, measured, companion)
}
