package msgorder

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	p, err := Parse("x, y : x.s -> y.s && y.r -> x.r")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Classify(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != Tagged {
		t.Fatalf("class = %v, want Tagged", res.Class)
	}
}

func TestBuilderFlow(t *testing.T) {
	p, err := NewPredicate("x", "y").
		Atom("x", S, "y", S).
		Atom("y", R, "x", R).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Classify(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != Tagged {
		t.Fatalf("class = %v", res.Class)
	}
}

func TestRunCheckFlow(t *testing.T) {
	msgs := []Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 1},
	}
	r, err := NewRun(msgs, [][]Event{
		{{Msg: 0, Kind: Send}, {Msg: 1, Kind: Send}},
		{{Msg: 1, Kind: Deliver}, {Msg: 0, Kind: Deliver}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := MustParse("x, y : x.s -> y.s && y.r -> x.r")
	if Satisfies(r, p) {
		t.Fatal("overtaking run must violate causal ordering")
	}
	m, found := FindViolation(r, p)
	if !found || len(m.Assignment) != 2 {
		t.Fatalf("match = %+v, found = %v", m, found)
	}
	if d := Diagram(r); !strings.Contains(d, "m0.s") {
		t.Errorf("diagram missing events:\n%s", d)
	}
}

func TestCatalogAccess(t *testing.T) {
	if len(Catalog()) < 10 {
		t.Fatal("catalog too small")
	}
	e, ok := CatalogByName("sync-2")
	if !ok {
		t.Fatal("sync-2 missing")
	}
	res, err := Classify(e.Pred)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != General {
		t.Fatalf("sync-2 class = %v", res.Class)
	}
}

func TestWitnessesExported(t *testing.T) {
	p := MustParse("x, y : x.s -> y.s && x.r -> y.r")
	r, err := SyncWitness(p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.InSync() {
		t.Fatal("witness must be synchronous")
	}
	crown := MustParse("x1, x2 : x1.s -> x2.r && x2.s -> x1.r")
	co, err := COWitness(crown)
	if err != nil {
		t.Fatal(err)
	}
	if !co.InCO() || co.InSync() {
		t.Fatal("CO witness must separate X_co from X_sync")
	}
	if _, err := AsyncWitness(MustParse("x, y : x.s -> y.s && y.r -> x.r")); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateAllProtocols(t *testing.T) {
	for name, maker := range Protocols() {
		res, err := Simulate(SimConfig{Maker: maker, Seed: 3, InitialMsgs: 8})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.View.IsComplete() {
			t.Fatalf("%s: incomplete run", name)
		}
	}
}

func TestSimulateWithFaults(t *testing.T) {
	res, err := Simulate(SimConfig{
		Maker:       Protocols()["causal-rst"],
		Seed:        2,
		InitialMsgs: 20,
		Faults:      &FaultPlan{DropRate: 0.2, DupRate: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.IsComplete() {
		t.Fatal("lossy run incomplete")
	}
	if res.Stats.Retransmits == 0 || res.Stats.FaultsInjected == 0 {
		t.Fatalf("transport stats not surfaced: %+v", res.Stats)
	}
}

func TestFaultSweepExported(t *testing.T) {
	fifoPred, ok := CatalogByName("fifo")
	if !ok {
		t.Fatal("fifo spec missing from catalog")
	}
	cells, err := FaultSweep(
		SimConfig{Maker: Protocols()["fifo"], Procs: 2, InitialMsgs: 10},
		[]FaultPlan{{DropRate: 0.25}},
		2, fifoPred.Pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Runs != 2 || cells[0].Violations != 0 {
		t.Fatalf("cells = %+v", cells)
	}
}

func TestEncodeDecodeRun(t *testing.T) {
	res, err := Simulate(SimConfig{Maker: Protocols()["fifo"], Seed: 1, InitialMsgs: 5})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeRun(res.View)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRun(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != res.View.Key() {
		t.Fatal("round trip changed the run")
	}
}

func TestComputeLatticeExported(t *testing.T) {
	co := MustParse("x, y : x.s -> y.s && y.r -> x.r")
	crown := MustParse("x1, x2 : x1.s -> x2.r && x2.s -> x1.r")
	lat, err := ComputeLattice(LatticeConfig{Msgs: 2, Procs: 2},
		map[string]*Predicate{"co": co, "sync": crown})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := lat.Included("sync", "co")
	if err != nil || !ok {
		t.Fatalf("X_sync ⊆ X_co expected: %v %v", ok, err)
	}
}

func TestGenerateProtocolExported(t *testing.T) {
	maker, plan, err := GenerateProtocol(MustParse(
		"x, y : process(x.s) == process(y.s) && process(x.r) == process(y.r) : x.s -> y.s && y.r -> x.r"))
	if err != nil {
		t.Fatal(err)
	}
	if maker == nil || plan.Strategy.String() != "channel-seq" {
		t.Fatalf("plan = %+v", plan)
	}
	if _, _, err := GenerateProtocol(MustParse("x1, x2 : x1.s -> x2.r && x2.s -> x1.r")); err == nil {
		t.Fatal("crown must be rejected")
	}
}

func TestNewSpecExported(t *testing.T) {
	s, err := NewSpec("combo",
		MustParse("x, y : x.s -> y.s && y.r -> x.r"),
		MustParse("x1, x2 : x1.s -> x2.r && x2.s -> x1.r"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Classify()
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != General {
		t.Fatalf("composite class = %v", res.Class)
	}
}

func TestSystemDiagramExported(t *testing.T) {
	res, err := Simulate(SimConfig{Maker: Protocols()["tagless"], Seed: 1, InitialMsgs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d := SystemDiagram(res.System); !strings.Contains(d, "m0.s*") {
		t.Errorf("system diagram missing invoke events:\n%s", d)
	}
}

func TestChannelMuxExported(t *testing.T) {
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	muxes := make([]*ChannelMux, 2)
	chans := make([]*Channel, 2)
	for i := range muxes {
		m, err := NewChannelMux(ChannelMuxConfig{
			Self:  ProcID(i),
			Procs: 2,
			Mesh:  MeshConfig{Addrs: addrs, Seed: int64(i + 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		muxes[i] = m
		ch, err := m.Open(ChannelSpec{Name: "orders", Spec: "causal-b2"})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	if chans[0].Proto() != "causal-rst" {
		t.Fatalf("witness = %q, want causal-rst", chans[0].Proto())
	}
	if err := chans[0].Invoke(Message{ID: 0, From: 0, To: 1}); err != nil {
		t.Fatal(err)
	}
	if err := chans[1].WaitDeliveries(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := muxes[0].Get("ghost"); !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("Get(ghost) = %v, want ErrUnknownChannel", err)
	}
}
