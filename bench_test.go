// Benchmarks regenerating the reproduction's tables and ablations; see
// DESIGN.md §4 for the experiment index. One benchmark per table/figure
// family:
//
//	T1  BenchmarkClassifyCatalog     classification of every paper spec
//	T2  BenchmarkLemma3Equivalence   exhaustive bounded-universe checking
//	T3  BenchmarkProtocolSafety      protocol runs + specification checking
//	E1  BenchmarkOverhead*           per-protocol tag/control cost
//	E2  BenchmarkClassifyLarge/CycleEnum  classifier scaling ablation
//	E8  BenchmarkExplore             sequential vs deduplicating explorer
//	—   BenchmarkCheckMatcher        pruned vs naive matcher ablation
//	—   BenchmarkSimBackends         dsim vs live goroutine network
package msgorder

import (
	"fmt"
	"testing"

	"msgorder/internal/catalog"
	"msgorder/internal/check"
	"msgorder/internal/classify"
	"msgorder/internal/conformance"
	"msgorder/internal/dsim"
	"msgorder/internal/inhib"
	"msgorder/internal/pgraph"
	"msgorder/internal/predicate"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/fifo"
	syncproto "msgorder/internal/protocols/sync"
	"msgorder/internal/protocols/tagless"
	"msgorder/internal/sim"
	"msgorder/internal/synth"
	"msgorder/internal/universe"
	"msgorder/internal/userview"
)

// --- T1: the classification table ---

func BenchmarkClassifyCatalog(b *testing.B) {
	entries := catalog.Entries()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, e := range entries {
			res, err := classify.Classify(e.Pred)
			if err != nil {
				b.Fatal(err)
			}
			if res.Class != e.PaperClass {
				b.Fatalf("%s: class %v != paper %v", e.Name, res.Class, e.PaperClass)
			}
		}
	}
}

// --- T2: Lemma 3 bounded-universe checking ---

func BenchmarkLemma3Equivalence(b *testing.B) {
	b1 := predicate.MustParse("x, y : x.s -> y.r && y.r -> x.r")
	b2 := predicate.MustParse("x, y : x.s -> y.s && y.r -> x.r")
	for i := 0; i < b.N; i++ {
		disagreements := 0
		universe.RunsNoSelf(3, 2, func(r *userview.Run) bool {
			if check.Satisfies(r, b1) != check.Satisfies(r, b2) {
				disagreements++
			}
			return true
		})
		if disagreements != 0 {
			b.Fatalf("%d disagreements", disagreements)
		}
	}
}

func BenchmarkUniverseEnumeration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := universe.Runs(3, 2, func(*userview.Run) bool { return true })
		if n == 0 {
			b.Fatal("empty universe")
		}
	}
}

// --- T3: protocol safety sweeps ---

func benchProtocol(b *testing.B, maker protocol.Maker, spec string) {
	e, ok := catalog.ByName(spec)
	if !ok {
		b.Fatalf("unknown spec %s", spec)
	}
	cfg := conformance.Config{
		Maker:       maker,
		Procs:       3,
		InitialMsgs: 12,
		ChainBudget: 8,
		ChainProb:   0.6,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := conformance.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, bad := check.FindViolation(res.View, e.Pred); bad {
			b.Fatalf("seed %d violated %s", cfg.Seed, spec)
		}
	}
}

func BenchmarkProtocolSafety(b *testing.B) {
	b.Run("fifo", func(b *testing.B) { benchProtocol(b, fifo.Maker, "fifo") })
	b.Run("causal-rst", func(b *testing.B) { benchProtocol(b, causal.RSTMaker, "causal-b2") })
	b.Run("causal-ses", func(b *testing.B) { benchProtocol(b, causal.SESMaker, "causal-b2") })
	b.Run("sync", func(b *testing.B) { benchProtocol(b, syncproto.Maker, "sync-2") })
}

// --- E1: overhead (also exercised as throughput) ---

func benchOverhead(b *testing.B, maker protocol.Maker, procs int) {
	cfg := conformance.Config{
		Maker:       maker,
		Procs:       procs,
		InitialMsgs: 30,
		ChainBudget: 10,
		ChainProb:   0.5,
	}
	var tagBytes, ctrl float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := conformance.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tagBytes += res.Stats.TagBytesPerUser()
		ctrl += res.Stats.ControlPerUser()
	}
	b.ReportMetric(tagBytes/float64(b.N), "tagB/msg")
	b.ReportMetric(ctrl/float64(b.N), "ctrl/msg")
}

func BenchmarkOverhead(b *testing.B) {
	for _, procs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("tagless/n=%d", procs), func(b *testing.B) { benchOverhead(b, tagless.Maker, procs) })
		b.Run(fmt.Sprintf("fifo/n=%d", procs), func(b *testing.B) { benchOverhead(b, fifo.Maker, procs) })
		b.Run(fmt.Sprintf("causal-rst/n=%d", procs), func(b *testing.B) { benchOverhead(b, causal.RSTMaker, procs) })
		b.Run(fmt.Sprintf("causal-ses/n=%d", procs), func(b *testing.B) { benchOverhead(b, causal.SESMaker, procs) })
		b.Run(fmt.Sprintf("sync/n=%d", procs), func(b *testing.B) { benchOverhead(b, syncproto.Maker, procs) })
	}
}

// BenchmarkCausalVariants is the RST-vs-SES ablation in isolation.
func BenchmarkCausalVariants(b *testing.B) {
	b.Run("rst/n=8", func(b *testing.B) { benchOverhead(b, causal.RSTMaker, 8) })
	b.Run("ses/n=8", func(b *testing.B) { benchOverhead(b, causal.SESMaker, 8) })
}

// --- E2: classifier scaling ---

func BenchmarkClassifyLarge(b *testing.B) {
	for _, k := range []int{8, 32, 64} {
		p := catalog.Crown(k)
		b.Run(fmt.Sprintf("crown-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := classify.Classify(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// denseBeta builds the all-β complete graph K_n (i.s -> j.r for i≠j).
func denseBeta(n int) *predicate.Predicate {
	vars := make([]string, n)
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i+1)
	}
	bld := predicate.NewBuilder(vars...)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				bld.Atom(vars[i], predicate.S, vars[j], predicate.R)
			}
		}
	}
	return bld.MustBuild()
}

func BenchmarkCycleEnum(b *testing.B) {
	for _, n := range []int{5, 7} {
		g := pgraph.New(denseBeta(n))
		b.Run(fmt.Sprintf("fast/K%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, ok := g.MinOrder(); !ok {
					b.Fatal("no cycle")
				}
			}
		})
		b.Run(fmt.Sprintf("exhaustive/K%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, ok := g.MinOrderExhaustive(); !ok {
					b.Fatal("no cycle")
				}
			}
		})
	}
}

// --- matcher ablation ---

func BenchmarkCheckMatcher(b *testing.B) {
	// A fixed mid-size run and the 3-crown predicate: the pruned matcher
	// cuts the tuple space, the naive one scans it all.
	res, err := conformance.Run(conformance.Config{
		Maker:       tagless.Maker,
		Procs:       4,
		InitialMsgs: 24,
		Seed:        5,
	})
	if err != nil {
		b.Fatal(err)
	}
	crown := catalog.Crown(3)
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			check.FindViolation(res.View, crown)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			check.FindViolationNaive(res.View, crown)
		}
	})
}

// --- simulator backends ---

func BenchmarkSimBackends(b *testing.B) {
	const msgs = 40
	b.Run("dsim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := conformance.Run(conformance.Config{
				Maker:       causal.RSTMaker,
				Procs:       4,
				InitialMsgs: msgs,
				Seed:        int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.Deliveries != msgs {
				b.Fatal("lost messages")
			}
		}
	})
	b.Run("live", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nw := sim.New(4, causal.RSTMaker, sim.WithSeed(int64(i+1)))
			for m := 0; m < msgs; m++ {
				nw.Invoke(sim.Request{From: ProcID(m % 4), To: ProcID((m + 1) % 4)})
			}
			res, err := nw.Stop()
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.Deliveries != msgs {
				b.Fatal("lost messages")
			}
		}
	})
}

// --- witness constructions ---

func BenchmarkWitnessConstruction(b *testing.B) {
	crown := catalog.Crown(3)
	for i := 0; i < b.N; i++ {
		if _, err := universe.COWitness(crown); err != nil {
			b.Fatal(err)
		}
	}
}

// --- denotational model exploration (E5) ---

func BenchmarkInhibExplore(b *testing.B) {
	msgs := []Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 1},
		{ID: 2, From: 1, To: 2},
	}
	protos := map[string]inhib.Protocol{
		"all-enabled":     inhib.AllEnabled{},
		"causal-delivery": inhib.CausalDelivery{},
		"sync-gate":       inhib.SyncGate{},
	}
	for name, p := range protos {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := inhib.Explore(p, msgs, 3)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Complete) == 0 {
					b.Fatal("no complete runs")
				}
			}
		})
	}
}

// --- protocol synthesis (E6) ---

func BenchmarkSynthGenerate(b *testing.B) {
	fifoEntry, _ := catalog.ByName("fifo")
	for i := 0; i < b.N; i++ {
		if _, _, err := synth.Generate(fifoEntry.Pred); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthChannelSeqRun(b *testing.B) {
	fifoEntry, _ := catalog.ByName("fifo")
	maker, _, err := synth.Generate(fifoEntry.Pred)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("generated", func(b *testing.B) { benchProtocol(b, maker, "fifo") })
	b.Run("handwritten", func(b *testing.B) { benchProtocol(b, fifo.Maker, "fifo") })
}

// --- E8: exhaustive schedule exploration ---

// benchExplore measures one explorer configuration over a fixed workload.
// The sequential/deduped pairs quantify the state-dedup + commutativity
// reductions: same violation coverage, a fraction of the replays.
func benchExplore(b *testing.B, cfg dsim.ExploreConfig) {
	b.ReportAllocs()
	var last dsim.ExploreStats
	for i := 0; i < b.N; i++ {
		st, err := dsim.ExploreWithStats(cfg, func(*dsim.Result) bool { return true })
		if err != nil {
			b.Fatal(err)
		}
		if st.Schedules == 0 {
			b.Fatal("no schedules explored")
		}
		last = st
	}
	b.ReportMetric(float64(last.Replays), "replays/op")
	b.ReportMetric(float64(last.Schedules), "schedules/op")
}

func BenchmarkExplore(b *testing.B) {
	workloads := []struct {
		name string
		cfg  dsim.ExploreConfig
	}{
		{"causal-rst-4msg", dsim.ExploreConfig{
			Procs: 3, Maker: causal.RSTMaker,
			Requests: []dsim.Request{
				{From: 0, To: 1}, {From: 0, To: 2},
				{From: 1, To: 2}, {From: 2, To: 1},
			},
		}},
		{"sync-2msg", dsim.ExploreConfig{
			Procs: 3, Maker: syncproto.Maker,
			Requests: []dsim.Request{{From: 1, To: 2}, {From: 2, To: 1}},
		}},
		{"sync-ra-2msg", dsim.ExploreConfig{
			Procs: 3, Maker: syncproto.RAMaker,
			Requests: []dsim.Request{{From: 1, To: 2}, {From: 2, To: 1}},
		}},
	}
	for _, w := range workloads {
		sequential := w.cfg
		sequential.Workers = 1
		b.Run(w.name+"/sequential", func(b *testing.B) { benchExplore(b, sequential) })
		b.Run(w.name+"/deduped", func(b *testing.B) { benchExplore(b, w.cfg) })
		// The instrumented variant quantifies tracing overhead against
		// /deduped — the nil-tracer fast path must keep the uninstrumented
		// runs above within noise of their pre-observability cost.
		b.Run(w.name+"/traced", func(b *testing.B) { benchExploreTraced(b, w.cfg) })
	}
}

func benchExploreTraced(b *testing.B, cfg dsim.ExploreConfig) {
	b.ReportAllocs()
	var records int
	for i := 0; i < b.N; i++ {
		col := NewTraceCollector()
		cfg.Tracer = col
		cfg.Metrics = NewMetricsRegistry()
		st, err := dsim.ExploreWithStats(cfg, func(*dsim.Result) bool { return true })
		if err != nil {
			b.Fatal(err)
		}
		if st.Schedules == 0 {
			b.Fatal("no schedules explored")
		}
		if col.Len() == 0 {
			b.Fatal("traced exploration emitted no records")
		}
		records = col.Len()
	}
	b.ReportMetric(float64(records), "records/op")
}
