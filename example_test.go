package msgorder_test

import (
	"fmt"

	"msgorder"
)

// ExampleParse shows the predicate text syntax.
func ExampleParse() {
	p, err := msgorder.Parse("x, y : x.s -> y.s && y.r -> x.r")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(p)
	// Output: forbidden x, y : x.s -> y.s && y.r -> x.r
}

// ExampleClassify runs the paper's algorithm on causal ordering.
func ExampleClassify() {
	p := msgorder.MustParse("x, y : x.s -> y.s && y.r -> x.r")
	res, err := msgorder.Classify(p)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Class, res.MinOrder)
	// Output: tagged 1
}

// ExampleClassify_unimplementable shows a specification no protocol can
// guarantee: the predicate graph is acyclic.
func ExampleClassify_unimplementable() {
	p := msgorder.MustParse("x, y : x.s -> y.s && x.r -> y.r")
	res, err := msgorder.Classify(p)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Class, res.HasCycle)
	// Output: unimplementable false
}

// ExampleFindViolation checks a recorded run against a specification.
func ExampleFindViolation() {
	p := msgorder.MustParse("x, y : x.s -> y.s && y.r -> x.r")
	msgs := []msgorder.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 1},
	}
	r, err := msgorder.NewRun(msgs, [][]msgorder.Event{
		{{Msg: 0, Kind: msgorder.Send}, {Msg: 1, Kind: msgorder.Send}},
		{{Msg: 1, Kind: msgorder.Deliver}, {Msg: 0, Kind: msgorder.Deliver}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	m, found := msgorder.FindViolation(r, p)
	fmt.Println(found, m.String(p))
	// Output: true x=m0, y=m1
}

// ExampleNewPredicate builds the FIFO specification programmatically.
func ExampleNewPredicate() {
	p, err := msgorder.NewPredicate("x", "y").
		SameProc("x", msgorder.S, "y", msgorder.S).
		SameProc("x", msgorder.R, "y", msgorder.R).
		Atom("x", msgorder.S, "y", msgorder.S).
		Atom("y", msgorder.R, "x", msgorder.R).
		Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	res, _ := msgorder.Classify(p)
	fmt.Println(res.Class)
	// Output: tagged
}

// ExampleSimulate runs the causal protocol and verifies its output.
func ExampleSimulate() {
	spec := msgorder.MustParse("x, y : x.s -> y.s && y.r -> x.r")
	res, err := msgorder.Simulate(msgorder.SimConfig{
		Maker:       msgorder.Protocols()["causal-rst"],
		Procs:       3,
		InitialMsgs: 15,
		ChainBudget: 10,
		Seed:        7,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(msgorder.Satisfies(res.View, spec), len(res.Undelivered))
	// Output: true 0
}

// ExampleCOWitness exhibits the paper's impossibility argument: a
// causally ordered run that crosses two messages, so tagging cannot give
// logical synchrony.
func ExampleCOWitness() {
	crown := msgorder.MustParse("x1, x2 : x1.s -> x2.r && x2.s -> x1.r")
	r, err := msgorder.COWitness(crown)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(r.InCO(), r.InSync())
	// Output: true false
}

// ExampleExplore model-checks the tagless protocol: among all arrival
// orders of two same-channel messages, one violates FIFO.
func ExampleExplore() {
	fifo := msgorder.MustParse(
		"x, y : process(x.s) == process(y.s) && process(x.r) == process(y.r) : x.s -> y.s && y.r -> x.r")
	violations := 0
	n, err := msgorder.Explore(msgorder.ExploreConfig{
		Procs: 2,
		Maker: msgorder.Protocols()["tagless"],
		Requests: []msgorder.ExploreRequest{
			{From: 0, To: 1},
			{From: 0, To: 1},
		},
	}, func(res *msgorder.SimResult) bool {
		if !msgorder.Satisfies(res.View, fifo) {
			violations++
		}
		return true
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(n, violations)
	// Output: 2 1
}

// ExampleExploreWithStats shows the search statistics: the deduplicating
// explorer covers all 4! = 24 arrival orders of this workload by visiting
// each distinct final state once.
func ExampleExploreWithStats() {
	st, err := msgorder.ExploreWithStats(msgorder.ExploreConfig{
		Procs: 3,
		Maker: msgorder.Protocols()["causal-rst"],
		Requests: []msgorder.ExploreRequest{
			{From: 0, To: 1},
			{From: 0, To: 2},
			{From: 1, To: 2},
			{From: 2, To: 1},
		},
	}, func(res *msgorder.SimResult) bool { return true })
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("distinct final states: %d\n", st.Schedules)
	fmt.Printf("pruned: %v\n", st.DedupHits+st.SleepHits > 0)
	// Output:
	// distinct final states: 4
	// pruned: true
}
