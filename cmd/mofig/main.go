// Command mofig regenerates the paper's ten figures as ASCII time
// diagrams and predicate graphs, each computed from the library's actual
// data structures (not hand-drawn): the causal-past construction of
// Figure 1, the FIFO inhibition of Figure 2, the knowledge gained through
// control messages (Figure 3), the system-versus-user view projection
// (Figure 4), the star-completion of Theorem 1 (Figure 5), the Example 1
// predicate graph (Figure 6), the numbering ladder of Lemma 2.1
// (Figure 7), and the proof constructions of Lemma 2 (Figures 8-10).
//
// Usage:
//
//	mofig          # all figures
//	mofig 4        # one figure
package main

import (
	"fmt"
	"io"
	"os"
	"strconv"

	"msgorder/internal/catalog"
	"msgorder/internal/conformance"
	"msgorder/internal/event"
	"msgorder/internal/pgraph"
	"msgorder/internal/run"
	"msgorder/internal/trace"
	"msgorder/internal/userview"

	syncproto "msgorder/internal/protocols/sync"
)

func main() {
	if err := render(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mofig:", err)
		os.Exit(1)
	}
}

var figures = []func(w io.Writer) error{
	figure1, figure2, figure3, figure4, figure5,
	figure6, figure7, figure8, figure9, figure10,
}

func render(args []string, w io.Writer) error {
	if len(args) == 0 {
		for i, fig := range figures {
			if i > 0 {
				fmt.Fprintln(w)
			}
			if err := fig(w); err != nil {
				return fmt.Errorf("figure %d: %w", i+1, err)
			}
		}
		return nil
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 1 || n > len(figures) {
		return fmt.Errorf("figure number must be 1..%d", len(figures))
	}
	return figures[n-1](w)
}

func header(w io.Writer, n int, caption string) {
	fmt.Fprintf(w, "Figure %d: %s\n", n, caption)
}

func inv(m event.MsgID) event.Event { return event.E(m, event.Invoke) }
func snd(m event.MsgID) event.Event { return event.E(m, event.Send) }
func rcv(m event.MsgID) event.Event { return event.E(m, event.Receive) }
func dlv(m event.MsgID) event.Event { return event.E(m, event.Deliver) }

func mustSys(msgs []event.Message, procs [][]event.Event) *run.Run {
	r, err := run.New(msgs, procs)
	if err != nil {
		panic(err)
	}
	return r
}

// figure1: causal past of a run with respect to a process.
func figure1(w io.Writer) error {
	header(w, 1, "causal past of H with respect to process 1")
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 2, To: 0},
		{ID: 2, From: 2, To: 1},
	}
	h := mustSys(msgs, [][]event.Event{
		{inv(0), snd(0), rcv(1), dlv(1)},
		{rcv(0), dlv(0)},
		{inv(1), snd(1), inv(2), snd(2)},
	})
	fmt.Fprintln(w, "run H (m2 still in transit to P1):")
	fmt.Fprint(w, trace.SystemDiagram(h))
	past, err := h.CausalPast(1)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "CausalPast_1(H): exactly the events that precede some event of P1:")
	fmt.Fprint(w, trace.SystemDiagram(past))
	return nil
}

// figure2: FIFO ordering by inhibition — delivery of m1 delayed past m0.
func figure2(w io.Writer) error {
	header(w, 2, "FIFO protocol inhibits delivery: m1 received first, delivered second")
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 1},
	}
	h := mustSys(msgs, [][]event.Event{
		{inv(0), snd(0), inv(1), snd(1)},
		{rcv(1), rcv(0), dlv(0), dlv(1)},
	})
	fmt.Fprint(w, trace.SystemDiagram(h))
	fmt.Fprintln(w, "P1 receives m1 before m0 (network reordering) but the protocol")
	fmt.Fprintln(w, "enables m1.r only after m0.r has executed.")
	return nil
}

// figure3: control messages provide knowledge of concurrent events.
func figure3(w io.Writer) error {
	header(w, 3, "control messages: the sequencer serializes logically synchronous sends")
	cfg := conformance.Config{
		Maker:       syncproto.Maker,
		Procs:       3,
		InitialMsgs: 4,
		Seed:        2,
	}
	res, err := conformance.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "user view (control messages deleted from the projection):")
	fmt.Fprint(w, trace.UserDiagram(res.View))
	fmt.Fprintf(w, "control messages used: %d (3 per user message: REQ, GO, DONE)\n",
		res.Stats.ControlMessages)
	fmt.Fprintf(w, "the view is logically synchronous: %v\n", res.View.InSync())
	return nil
}

// figure4: system view versus user's view of a FIFO run.
func figure4(w io.Writer) error {
	header(w, 4, "system's view vs user's view: buffering creates causality the user never sees")
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 1},
	}
	h := mustSys(msgs, [][]event.Event{
		{inv(0), snd(0), inv(1), snd(1)},
		{rcv(1), rcv(0), dlv(0), dlv(1)},
	})
	fmt.Fprintln(w, "system view:")
	fmt.Fprint(w, trace.SystemDiagram(h))
	fmt.Fprintf(w, "system: m1.s -> m0.r holds: %v (through the buffered receive)\n",
		h.Before(snd(1), dlv(0)))
	view, err := h.UsersView()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "user's view:")
	fmt.Fprint(w, trace.UserDiagram(view))
	fmt.Fprintf(w, "user:   m1.s ▷ m0.r holds: %v\n", view.Before(snd(1), dlv(0)))
	return nil
}

// figure5: constructing a system run H from a user view (H,▷).
func figure5(w io.Writer) error {
	header(w, 5, "Theorem 1 construction: insert x.s* before x.s and x.r* before x.r")
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 1, To: 0},
	}
	view, err := userview.New(msgs, [][]event.Event{
		{snd(0), dlv(1)},
		{snd(1), dlv(0)},
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "user view (H,▷) — a crossing pair, causally ordered:")
	fmt.Fprint(w, trace.UserDiagram(view))
	h, err := run.FromUserView(view)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "completed system run H with UsersView(H) = (H,▷):")
	fmt.Fprint(w, trace.SystemDiagram(h))
	fmt.Fprintf(w, "H ∈ X_u: %v, H ∈ X_td: %v, H ∈ X_gn: %v (crossing pair has no numbering)\n",
		h.InXu(), h.InXtd(), h.InXgn())
	return nil
}

// figure6: the Example 1 predicate graph with its cycles and β vertices.
func figure6(w io.Writer) error {
	header(w, 6, "predicate graph of Example 1, its cycles and β vertices")
	e, _ := catalog.ByName("example-1")
	fmt.Fprintf(w, "predicate: %s\n", e.Pred)
	g := pgraph.New(e.Pred)
	fmt.Fprintln(w, "edges:")
	for _, ed := range g.Edges() {
		fmt.Fprintf(w, "  %s\n", g.EdgeString(ed))
	}
	fmt.Fprintln(w, "simple cycles:")
	g.SimpleCycles(func(c pgraph.Cycle) bool {
		names := make([]string, 0, len(c.BetaVertices()))
		for _, v := range c.BetaVertices() {
			names = append(names, g.Var(v))
		}
		fmt.Fprintf(w, "  order %d, β=%v: %s\n", c.Order(), names, g.CycleString(c))
		return true
	})
	fmt.Fprint(w, g.DOT())
	return nil
}

// figure7: the numbering ladder N(x.r) = N(x.s*)+3 of Lemma 2.1.
func figure7(w io.Writer) error {
	header(w, 7, "X_gn prefix ladder: every run with a numbering is reachable in 4-step blocks")
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 1, To: 0},
	}
	h := mustSys(msgs, [][]event.Event{
		{inv(0), snd(0), rcv(1), dlv(1)},
		{rcv(0), dlv(0), inv(1), snd(1)},
	})
	fmt.Fprint(w, trace.SystemDiagram(h))
	scheme, ok := h.NumberingScheme()
	if !ok {
		return fmt.Errorf("sequential run must admit a numbering")
	}
	order, _ := h.Numbering()
	fmt.Fprintf(w, "message numbering T: %v\n", order)
	fmt.Fprintln(w, "event numbers N (N(x.r) = N(x.r*)+1 = N(x.s)+2 = N(x.s*)+3):")
	for _, id := range order {
		for _, k := range []event.Kind{event.Invoke, event.Send, event.Receive, event.Deliver} {
			ev := event.E(id, k)
			fmt.Fprintf(w, "  N(%v) = %d\n", ev, scheme[ev])
		}
	}
	return nil
}

// figure8: the prefix chain of the Lemma 2.1 proof.
func figure8(w io.Writer) error {
	header(w, 8, "Lemma 2.1 proof: building an X_gn run one enabled event at a time")
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
	}
	steps := [][][]event.Event{
		{{inv(0)}, {}},
		{{inv(0), snd(0)}, {}},
		{{inv(0), snd(0)}, {rcv(0)}},
		{{inv(0), snd(0)}, {rcv(0), dlv(0)}},
	}
	for i, procs := range steps {
		h := mustSys(msgs, procs)
		fmt.Fprintf(w, "H^%d (pending: S=%d R=%d D=%d):\n", i+1,
			len(h.SendPending(0)), len(h.ReceivePending(1)), len(h.DeliverPending(1)))
		fmt.Fprint(w, trace.SystemDiagram(h))
	}
	fmt.Fprintln(w, "each extension adds one event drawn from the enabled set P(H).")
	return nil
}

// figure9: the Lemma 2.2 construction — a tagged protocol cannot
// distinguish H from the causal-past-equivalent run G.
func figure9(w io.Writer) error {
	header(w, 9, "Lemma 2.2 construction: G agrees with H on CausalPast_1 but quiesces elsewhere")
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 2},
	}
	h := mustSys(msgs, [][]event.Event{
		{inv(0), snd(0), inv(1), snd(1)},
		{rcv(0), dlv(0)},
		{},
	})
	fmt.Fprintln(w, "run H (m1 in transit to P2):")
	fmt.Fprint(w, trace.SystemDiagram(h))
	// G: extend the causal past of P1 by completing messages not headed
	// to P1.
	g := mustSys(msgs, [][]event.Event{
		{inv(0), snd(0), inv(1), snd(1)},
		{rcv(0), dlv(0)},
		{rcv(1), dlv(1)},
	})
	fmt.Fprintln(w, "run G (m1 received and delivered at P2):")
	fmt.Fprint(w, trace.SystemDiagram(g))
	hp, err := h.CausalPast(1)
	if err != nil {
		return err
	}
	gp, err := g.CausalPast(1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "CausalPast_1(H) = CausalPast_1(G): %v — a tagged protocol must act identically at P1\n",
		hp.Equal(gp))
	return nil
}

// figure10: the Lemma 2.3 construction — a tagless protocol sees only the
// local history.
func figure10(w io.Writer) error {
	header(w, 10, "Lemma 2.3 construction: G agrees with H on H_1 only; a tagless protocol cannot tell")
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 1},
	}
	h := mustSys(msgs, [][]event.Event{
		{inv(0), snd(0), inv(1), snd(1)},
		{rcv(1)},
	})
	fmt.Fprintln(w, "run H (m0 sent first, but P1 has received only m1):")
	fmt.Fprint(w, trace.SystemDiagram(h))
	g := mustSys(msgs, [][]event.Event{
		{inv(1), snd(1)},
		{rcv(1)},
	})
	fmt.Fprintln(w, "run G (m0 never requested; P1's local history is identical):")
	fmt.Fprint(w, trace.SystemDiagram(g))
	fmt.Fprintln(w, "P1's local history matches, so a tagless protocol must enable m1.r in both;")
	fmt.Fprintln(w, "in G the enablement is mandatory for liveness, in H it breaks FIFO — hence")
	fmt.Fprintln(w, "tagless protocols cannot implement FIFO.")
	return nil
}
