package main

import (
	"strings"
	"testing"
)

func TestAllFigures(t *testing.T) {
	var b strings.Builder
	if err := render(nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for i := 1; i <= 10; i++ {
		want := "Figure " + string(rune('0'+i%10))
		if i == 10 {
			want = "Figure 10"
		}
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	for _, want := range []string{
		"CausalPast_1(H)",
		"logically synchronous: true",
		"user:   m1.s ▷ m0.r holds: false",
		"H ∈ X_u: true",
		"β=[x4]",
		"N(m0.s*) = 0",
		"CausalPast_1(H) = CausalPast_1(G): true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figures output missing %q", want)
		}
	}
}

func TestSingleFigure(t *testing.T) {
	var b strings.Builder
	if err := render([]string{"6"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "digraph predicate") {
		t.Error("figure 6 missing DOT graph")
	}
	if strings.Contains(b.String(), "Figure 1:") {
		t.Error("single-figure mode rendered extra figures")
	}
}

func TestBadFigureNumber(t *testing.T) {
	var b strings.Builder
	for _, arg := range []string{"0", "11", "x"} {
		if err := render([]string{arg}, &b); err == nil {
			t.Errorf("render(%q) should fail", arg)
		}
	}
}
