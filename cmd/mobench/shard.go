// The shard subcommand: E14's sharded open-loop throughput runs — the
// keyed workload hash-partitioned across independent shard runtimes,
// every ordering key running its own lazily created instance of the
// protocol — on the in-memory sim and on loopback TCP meshes. Rows are
// compared against the single-domain BENCH_load.json baseline when it
// is present. -json writes BENCH_shard.json, then re-reads and
// re-validates the file so a truncated or zero-throughput snapshot is
// an error, not an artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"msgorder/internal/conformance"
	"msgorder/internal/protocols/registry"
)

// shardData runs the sim and mesh sharded-load rows for each named
// protocol, stamping the single-domain baseline when available.
func shardData(protos []string, cfg conformance.ShardLoadConfig, base map[string]float64) ([]conformance.ShardLoadResult, error) {
	var rows []conformance.ShardLoadResult
	for _, name := range protos {
		e, ok := registry.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown protocol %q (see 'mobench protocols')", name)
		}
		p := conformance.NetProtocol{Name: e.Name, Maker: e.Maker, Colors: e.Colors}
		simRes, err := conformance.RunShardLoadSim(p, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, simRes)
		meshRes, err := conformance.RunShardLoadMesh(p, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, meshRes)
	}
	for i := range rows {
		if b := base[rows[i].Runtime+"/"+rows[i].Protocol]; b > 0 {
			rows[i].BaselineMsgsPerSec = b
			rows[i].Speedup = rows[i].MsgsPerSec / b
		}
	}
	return rows, nil
}

// loadBaseline reads BENCH_load.json from dir and returns single-domain
// throughput keyed "runtime/protocol", or nil if the snapshot is absent
// or unreadable.
func loadBaseline(dir string) map[string]float64 {
	b, err := os.ReadFile(filepath.Join(dir, "BENCH_load.json"))
	if err != nil {
		return nil
	}
	var f struct {
		Rows []conformance.LoadResult `json:"rows"`
	}
	if json.Unmarshal(b, &f) != nil {
		return nil
	}
	out := map[string]float64{}
	for _, r := range f.Rows {
		if r.MsgsPerSec > 0 {
			out[r.Runtime+"/"+r.Protocol] = r.MsgsPerSec
		}
	}
	return out
}

// validateBenchShard re-reads a written BENCH_shard.json and fails
// unless it parses and every row shows nonzero throughput over a
// many-key, many-shard workload — the shard-smoke gate's whole check is
// this function's exit code.
func validateBenchShard(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("re-reading %s: %w", path, err)
	}
	var f struct {
		Experiment string                        `json:"experiment"`
		Rows       []conformance.ShardLoadResult `json:"rows"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		return fmt.Errorf("%s is not valid JSON: %w", path, err)
	}
	if f.Experiment == "" || len(f.Rows) == 0 {
		return fmt.Errorf("%s has no rows", path)
	}
	for _, r := range f.Rows {
		if r.MsgsPerSec <= 0 || r.Msgs <= 0 {
			return fmt.Errorf("%s: %s/%s reports zero throughput", path, r.Runtime, r.Protocol)
		}
		if r.Keys < 2 || r.Shards < 2 {
			return fmt.Errorf("%s: %s/%s is not a sharded run (%d keys, %d shards)",
				path, r.Runtime, r.Protocol, r.Keys, r.Shards)
		}
	}
	return nil
}

// benchShard writes and re-validates the BENCH_shard.json snapshot for
// 'mobench bench' (a shorter workload than the standalone subcommand's
// default, so the full snapshot regeneration stays quick).
func benchShard(outdir string) error {
	cfg := conformance.ShardLoadConfig{Msgs: 8000, Keys: 1000, Shards: 4, Seed: 5}
	rows, err := shardData(strings.Split(defaultLoadProtos, ","), cfg, loadBaseline(outdir))
	if err != nil {
		return err
	}
	if err := writeBench(outdir, "BENCH_shard.json", "E14 ordering-key sharded load", rows); err != nil {
		return err
	}
	return validateBenchShard(filepath.Join(outdir, "BENCH_shard.json"))
}

// shardCmd runs E14:
//
//	mobench shard                # print the sharded-throughput table
//	mobench shard -json          # write + re-validate BENCH_shard.json
//	mobench shard -keys 1000000  # a million ordering domains
func shardCmd(args []string) error {
	fs := flag.NewFlagSet("mobench shard", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "write the BENCH_shard.json snapshot instead of a table")
	outdir := fs.String("outdir", ".", "directory to write BENCH_shard.json into (and find the BENCH_load.json baseline)")
	msgs := fs.Int("msgs", 40000, "total open-loop workload length per run")
	keys := fs.Int("keys", 1000, "number of ordering domains")
	shards := fs.Int("shards", 4, "independent shard runtimes per run")
	seed := fs.Int64("seed", 5, "workload seed")
	procs := fs.Int("procs", 3, "per-shard mesh size")
	protos := fs.String("protos", defaultLoadProtos, "comma-separated protocol list")
	timeout := fs.Duration("timeout", 120*time.Second, "drain deadline per shard")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := conformance.ShardLoadConfig{
		Procs: *procs, Msgs: *msgs, Keys: *keys, Shards: *shards,
		Seed: *seed, Timeout: *timeout,
	}
	rows, err := shardData(strings.Split(*protos, ","), cfg, loadBaseline(*outdir))
	if err != nil {
		return err
	}
	for _, r := range rows {
		if r.MsgsPerSec <= 0 {
			return fmt.Errorf("%s/%s reports zero throughput", r.Runtime, r.Protocol)
		}
	}
	if *jsonOut {
		if err := writeBench(*outdir, "BENCH_shard.json", "E14 ordering-key sharded load", rows); err != nil {
			return err
		}
		return validateBenchShard(filepath.Join(*outdir, "BENCH_shard.json"))
	}
	fmt.Println("== E14: ordering-key sharded load — independent domains across shard runtimes ==")
	fmt.Printf("%d messages over %d keys on %d shards per run, invoked open-loop\n", *msgs, *keys, *shards)
	fmt.Printf("%-12s %-8s %-8s %10s %9s %9s %12s %8s\n",
		"protocol", "class", "runtime", "msgs/sec", "p50(µs)", "p99(µs)", "baseline", "speedup")
	for _, r := range rows {
		baseline, speedup := "-", "-"
		if r.BaselineMsgsPerSec > 0 {
			baseline = fmt.Sprintf("%.0f", r.BaselineMsgsPerSec)
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
		}
		fmt.Printf("%-12s %-8s %-8s %10.0f %9d %9d %12s %8s\n",
			r.Protocol, r.Class, r.Runtime, r.MsgsPerSec, r.P50us, r.P99us, baseline, speedup)
	}
	fmt.Println("expected shape: aggregate throughput at or above the single-domain baseline —")
	fmt.Println("keys never block each other, so sharding costs only the per-key demux and the")
	fmt.Println("runtimes drain domains concurrently; baseline is the committed BENCH_load.json.")
	return nil
}
