// Command mobench regenerates every table and derived experiment of the
// reproduction (see DESIGN.md's experiment index and EXPERIMENTS.md for
// the recorded results):
//
//	mobench table1      # T1: §4.3 classification table over the catalog
//	mobench lemma3      # T2: Lemma 3 equivalences, checked exhaustively
//	mobench protocols   # T3: Theorem 1 empirically — protocol × spec matrix
//	mobench overhead    # E1: tag bytes / control messages / time by protocol
//	mobench scaling     # E2: classifier cost vs predicate size
//	mobench discussion  # E3: the §5 discussion specifications
//	mobench faults      # E9: protocols on a lossy network (fault matrix)
//	mobench trace       # E10: instrumented run -> Chrome trace JSON (Perfetto)
//	mobench crashes     # E11: crash/recovery matrix (-json writes BENCH_crashes.json)
//	mobench net         # E12: sim vs loopback-TCP mesh (-json writes BENCH_net.json;
//	                    #      -smoke -modbin M diffs real mod processes against the sim)
//	mobench load        # E13: sustained open-loop load, sim + mesh (-json writes
//	                    #      BENCH_load.json; -wal adds group-commit file WALs)
//	mobench shard       # E14: ordering-key sharded load across independent
//	                    #      domains (-json writes BENCH_shard.json)
//	mobench obs         # E15: observability-plane overhead — traced vs untraced
//	                    #      load, scraped fleet timelines, contended locks
//	                    #      (-json writes BENCH_obs.json)
//	mobench churn       # E16: membership churn matrix — {join,leave,evict,handoff}
//	                    #      x topology-shaped environments (-json writes
//	                    #      BENCH_churn.json; -smoke is the CI gate)
//	mobench mux         # E17: multiplexed channels — per-channel guarantee levels
//	                    #      over one shared mesh, views vs standalone + overhead
//	                    #      comparison (-json writes BENCH_mux.json; -smoke is
//	                    #      the CI gate)
//	mobench bench       # write BENCH_*.json snapshots (-outdir picks the directory)
//	mobench all         # every table experiment
//
// Global flags (before the subcommand):
//
//	-json             emit machine-readable JSON instead of tables
//	                  (explore, overhead, scaling, faults)
//	-cpuprofile f     write a CPU profile to f
//	-memprofile f     write a heap profile to f on exit
//	-mutex-fraction n sample 1/n mutex contention events into the mutex profile
//	-block-rate n     sample goroutine blocking events of ≥ n ns
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"msgorder/internal/catalog"
	"msgorder/internal/check"
	"msgorder/internal/classify"
	"msgorder/internal/conformance"
	"msgorder/internal/dsim"
	"msgorder/internal/event"
	"msgorder/internal/inhib"
	"msgorder/internal/lattice"
	"msgorder/internal/pgraph"
	"msgorder/internal/predicate"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/fifo"
	"msgorder/internal/protocols/registry"
	syncproto "msgorder/internal/protocols/sync"
	"msgorder/internal/protocols/tagless"
	"msgorder/internal/synth"
	"msgorder/internal/transport"
	"msgorder/internal/universe"
	"msgorder/internal/userview"
)

func main() { os.Exit(mainExit(os.Args[1:])) }

// mainExit is main's body with the exit code as a return value, so the
// process-level contract — any failing subcommand (a violated matrix,
// a failed trace validation, bad flags) exits non-zero — is testable.
func mainExit(args []string) int {
	if err := run(args); err != nil {
		fmt.Fprintln(os.Stderr, "mobench:", err)
		return 1
	}
	return 0
}

// options are the global flags shared by all subcommands.
type options struct {
	json       bool
	cpuprofile string
	memprofile string
	mutexFrac  int
	blockRate  int
}

func run(args []string) error {
	fs := flag.NewFlagSet("mobench", flag.ContinueOnError)
	var opt options
	fs.BoolVar(&opt.json, "json", false, "emit JSON instead of tables (explore, overhead, scaling, faults)")
	fs.StringVar(&opt.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&opt.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	fs.IntVar(&opt.mutexFrac, "mutex-fraction", 0, "sample 1/n mutex contention events (0 leaves profiling off)")
	fs.IntVar(&opt.blockRate, "block-rate", 0, "sample blocking events ≥ n ns (0 leaves profiling off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if opt.mutexFrac > 0 {
		runtime.SetMutexProfileFraction(opt.mutexFrac)
	}
	if opt.blockRate > 0 {
		runtime.SetBlockProfileRate(opt.blockRate)
	}
	args = fs.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}

	if opt.cpuprofile != "" {
		f, err := os.Create(opt.cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if opt.memprofile != "" {
		defer func() {
			f, err := os.Create(opt.memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mobench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mobench: memprofile:", err)
			}
		}()
	}

	cmds := map[string]func() error{
		"table1":     table1,
		"lemma3":     lemma3,
		"protocols":  protocols,
		"explore":    func() error { return explore(opt.json) },
		"overhead":   func() error { return overhead(opt.json) },
		"broadcast":  broadcastBench,
		"scaling":    func() error { return scaling(opt.json) },
		"discussion": discussion,
		"inhibitory": inhibitory,
		"synthesis":  synthesis,
		"lattice":    latticeBench,
		"faults":     func() error { return faults(opt.json) },
	}
	switch args[0] {
	case "all":
		for _, name := range []string{
			"table1", "lemma3", "protocols", "explore", "overhead",
			"broadcast", "scaling", "discussion", "inhibitory", "synthesis",
			"lattice", "faults",
		} {
			if err := cmds[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	case "trace":
		return traceCmd(args[1:])
	case "bench":
		return benchCmd(args[1:])
	case "crashes":
		return crashesCmd(args[1:])
	case "net":
		return netCmd(args[1:])
	case "load":
		return loadCmd(args[1:])
	case "shard":
		return shardCmd(args[1:])
	case "obs":
		return obsCmd(args[1:])
	case "churn":
		return churnCmd(args[1:])
	case "mux":
		return muxCmd(args[1:])
	}
	fn, ok := cmds[args[0]]
	if !ok {
		return fmt.Errorf("unknown experiment %q", args[0])
	}
	return fn()
}

// table1 reproduces the §4.3 classification table over the catalog.
func table1() error {
	fmt.Println("== T1: classification table (§4.3) — paper class vs computed class ==")
	fmt.Printf("%-22s %-42s %-6s %-16s %-16s %s\n",
		"name", "title", "order", "paper", "computed", "match")
	mismatches := 0
	for _, e := range catalog.Entries() {
		res, err := classify.Classify(e.Pred)
		if err != nil {
			return err
		}
		match := "OK"
		if res.Class != e.PaperClass {
			match = "MISMATCH"
			mismatches++
		}
		order := "-"
		if res.HasCycle {
			order = fmt.Sprint(res.MinOrder)
		}
		fmt.Printf("%-22s %-42s %-6s %-16s %-16s %s\n",
			e.Name, e.Title, order, e.PaperClass, res.Class, match)
	}
	fmt.Printf("entries: %d, mismatches: %d\n", len(catalog.Entries()), mismatches)
	return nil
}

// lemma3 checks the Lemma 3 predicate families exhaustively over bounded
// universes.
func lemma3() error {
	fmt.Println("== T2: Lemma 3 — equivalences and unsatisfiability, exhaustive over bounded universes ==")
	b1 := predicate.MustParse("x, y : x.s -> y.r && y.r -> x.r")
	b2 := predicate.MustParse("x, y : x.s -> y.s && y.r -> x.r")
	b3 := predicate.MustParse("x, y : x.s -> y.s && y.s -> x.r")

	total, disagreements := 0, 0
	universe.RunsNoSelf(3, 2, func(r *userview.Run) bool {
		total++
		s1, s2, s3 := check.Satisfies(r, b1), check.Satisfies(r, b2), check.Satisfies(r, b3)
		if s1 != s2 || s2 != s3 {
			disagreements++
		}
		return true
	})
	tables := [][]event.Message{
		{{ID: 0, From: 0, To: 1}, {ID: 1, From: 2, To: 0}, {ID: 2, From: 0, To: 1}},
		{{ID: 0, From: 0, To: 1}, {ID: 1, From: 1, To: 2}, {ID: 2, From: 2, To: 0}},
		{{ID: 0, From: 0, To: 2}, {ID: 1, From: 0, To: 1}, {ID: 2, From: 1, To: 2}},
	}
	for _, msgs := range tables {
		universe.Schedules(msgs, 3, func(r *userview.Run) bool {
			total++
			s1, s2, s3 := check.Satisfies(r, b1), check.Satisfies(r, b2), check.Satisfies(r, b3)
			if s1 != s2 || s2 != s3 {
				disagreements++
			}
			return true
		})
	}
	fmt.Printf("Lemma 3.2 (B1 ⇔ B2 ⇔ B3):      %6d runs without self-messages, %d disagreements\n",
		total, disagreements)

	// The self-message caveat (reproduction finding).
	selfTotal, selfDisagreements := 0, 0
	universe.Runs(2, 1, func(r *userview.Run) bool {
		selfTotal++
		if check.Satisfies(r, b1) != check.Satisfies(r, b2) {
			selfDisagreements++
		}
		return true
	})
	fmt.Printf("  caveat: with self-addressed messages the equivalence FAILS: %d/%d single-process runs disagree\n",
		selfDisagreements, selfTotal)

	asyncPreds := []*predicate.Predicate{
		predicate.MustParse("x, y : x.s -> y.s && y.s -> x.s"),
		predicate.MustParse("x, y : x.s -> y.s && y.r -> x.s"),
		predicate.MustParse("x, y : x.r -> y.s && y.s -> x.r"),
		predicate.MustParse("x, y : x.r -> y.r && y.r -> x.s"),
		predicate.MustParse("x, y : x.r -> y.r && y.r -> x.r"),
	}
	runs, matches := 0, 0
	universe.Runs(3, 2, func(r *userview.Run) bool {
		runs++
		for _, p := range asyncPreds {
			if _, found := check.FindViolation(r, p); found {
				matches++
			}
		}
		return true
	})
	fmt.Printf("Lemma 3.3 (unsatisfiable forms): %6d runs x %d predicates, %d matches (expect 0)\n",
		runs, len(asyncPreds), matches)

	// Lemma 3.1: the crown predicates all contain X_sync.
	crownViol := 0
	syncRuns := 0
	universe.Runs(3, 2, func(r *userview.Run) bool {
		if !r.InSync() {
			return true
		}
		syncRuns++
		for k := 2; k <= 3; k++ {
			if !check.Satisfies(r, catalog.Crown(k)) {
				crownViol++
			}
		}
		return true
	})
	fmt.Printf("Lemma 3.1 (X_sync ⊆ crown-k):    %6d synchronous runs, %d crown matches (expect 0)\n",
		syncRuns, crownViol)
	return nil
}

// protocolList is the fixed presentation order, shared with the mod
// daemon via the protocol registry.
func protocolList() []registry.Entry {
	return registry.Catalog()
}

// specEntry resolves a catalog specification or fails loudly — a typo
// in a hardcoded spec name must not silently test a nil predicate.
func specEntry(name string) (catalog.Entry, error) {
	e, ok := catalog.ByName(name)
	if !ok {
		return catalog.Entry{}, fmt.Errorf("unknown catalog spec %q", name)
	}
	return e, nil
}

// protocols reproduces Theorem 1 empirically: which protocol satisfies
// which specification, and where violations live.
func protocols() error {
	fmt.Println("== T3: Theorem 1 empirically — protocol × specification matrix ==")
	fmt.Println("cell: 'safe(n)' = no violation in n seeds; 'viol@s' = violating seed s found")
	specs := []string{"fifo", "causal-b2", "sync-2"}
	const safeSeeds, huntSeeds = 40, 400

	fmt.Printf("%-12s", "protocol")
	for _, s := range specs {
		fmt.Printf(" %-12s", s)
	}
	fmt.Println(" class")
	for _, p := range protocolList() {
		fmt.Printf("%-12s", p.Name)
		cfg := conformance.Config{
			Maker:       p.Maker,
			Procs:       3,
			InitialMsgs: 10,
			ChainBudget: 10,
			ChainProb:   0.7,
			DelayMax:    40,
		}
		for _, sn := range specs {
			e, err := specEntry(sn)
			if err != nil {
				return err
			}
			v, found, err := conformance.FindsViolation(cfg, huntSeeds, e.Pred)
			if err != nil {
				return err
			}
			if found {
				fmt.Printf(" %-12s", fmt.Sprintf("viol@%d", v.Seed))
			} else {
				_, viols, err := conformance.Sweep(cfg, safeSeeds, e.Pred)
				if err != nil {
					return err
				}
				if len(viols) > 0 {
					fmt.Printf(" %-12s", "viol!")
				} else {
					fmt.Printf(" %-12s", fmt.Sprintf("safe(%d)", safeSeeds))
				}
			}
		}
		class := "general"
		if d, ok := p.Maker().(protocol.Describer); ok {
			class = d.Describe().Class.String()
		}
		fmt.Printf(" %s\n", class)
	}
	fmt.Println("expected shape: each class satisfies its own row and fails every stronger spec;")
	fmt.Println("only the general (control-message) protocol satisfies sync-2.")
	return nil
}

// exploreRow is one protocol's result in the exhaustive-exploration
// experiment, in both table and -json form.
type exploreRow struct {
	Protocol   string         `json:"protocol"`
	Orders     int            `json:"orders"`
	Schedules  int            `json:"schedules"`
	Replays    int            `json:"replays"`
	Pruned     int            `json:"pruned"`
	ElapsedUS  int64          `json:"elapsed_us"`
	Violations map[string]int `json:"violations"`
}

// exploreData runs the triangle workload under every arrival order for
// each catalog protocol and returns one row per protocol.
func exploreData(specs []string) ([]exploreRow, error) {
	preds := make([]*predicate.Predicate, len(specs))
	for i, s := range specs {
		e, err := specEntry(s)
		if err != nil {
			return nil, err
		}
		preds[i] = e.Pred
	}
	var rows []exploreRow
	for _, p := range protocolList() {
		cfg := dsim.ExploreConfig{
			Procs: 3,
			Maker: p.Maker,
			Requests: []dsim.Request{
				{From: 0, To: 2},
				{From: 0, To: 1},
			},
			MakeHook: func() func(event.ProcID, event.MsgID) []dsim.Request {
				fired := false
				return func(q event.ProcID, _ event.MsgID) []dsim.Request {
					if q != 1 || fired {
						return nil
					}
					fired = true
					return []dsim.Request{{From: 1, To: 2}}
				}
			},
		}
		seq := cfg
		seq.Workers = 1
		orders, err := dsim.Explore(seq, func(*dsim.Result) bool { return true })
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		counts := make([]int, len(specs))
		st, err := dsim.ExploreWithStats(cfg, func(res *dsim.Result) bool {
			for i, pr := range preds {
				if _, bad := check.FindViolation(res.View, pr); bad {
					counts[i]++
				}
			}
			return true
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		row := exploreRow{
			Protocol:   p.Name,
			Orders:     orders,
			Schedules:  st.Schedules,
			Replays:    st.Replays,
			Pruned:     st.DedupHits + st.SleepHits,
			ElapsedUS:  st.Elapsed.Microseconds(),
			Violations: make(map[string]int, len(specs)),
		}
		for i, s := range specs {
			row.Violations[s] = counts[i]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// explore upgrades the seed-based matrix to small-scope model checking:
// the triangle workload (two sends from P0, a relay from P1 to P2) is
// replayed under EVERY network arrival order. The "orders" column is the
// legacy sequential enumeration (Workers: 1); the remaining columns come
// from the default deduplicating search, which covers the same ground in
// "states" distinct final states.
func explore(jsonOut bool) error {
	specs := []string{"fifo", "causal-b2"}
	rows, err := exploreData(specs)
	if err != nil {
		return err
	}
	if jsonOut {
		return printJSON(os.Stdout, rows)
	}
	fmt.Println("== T3b: exhaustive schedule exploration — triangle workload, every arrival order ==")
	fmt.Printf("%-12s %-7s %-7s %-8s %-7s %-10s", "protocol", "orders", "states", "replays", "pruned", "time")
	for _, s := range specs {
		fmt.Printf(" %-14s", s)
	}
	fmt.Println()
	for _, row := range rows {
		fmt.Printf("%-12s %-7d %-7d %-8d %-7d %-10s", row.Protocol, row.Orders, row.Schedules,
			row.Replays, row.Pruned,
			(time.Duration(row.ElapsedUS) * time.Microsecond).Round(10*time.Microsecond))
		for _, s := range specs {
			if c := row.Violations[s]; c == 0 {
				fmt.Printf(" %-14s", "safe(all)")
			} else {
				fmt.Printf(" %-14s", fmt.Sprintf("viol %d/%d", c, row.Schedules))
			}
		}
		fmt.Println()
	}
	fmt.Println("safe(all) is a proof for this workload, not a sample: no schedule exists")
	fmt.Println("that violates the specification. The deduplicating search visits each")
	fmt.Println("distinct final state once; 'pruned' counts schedules it never replayed.")
	return nil
}

// overheadRow is one (protocol, system size) cell of the overhead
// experiment, averaged over seeds.
type overheadRow struct {
	Protocol       string  `json:"protocol"`
	Procs          int     `json:"procs"`
	TagBytesPerMsg float64 `json:"tag_bytes_per_msg"`
	CtrlPerMsg     float64 `json:"ctrl_per_msg"`
	Steps          float64 `json:"steps"`
	SimTime        float64 `json:"sim_time"`
}

// overheadData measures protocol cost for every (protocol, procs) pair.
func overheadData() ([]overheadRow, error) {
	var rows []overheadRow
	for _, p := range protocolList() {
		for _, procs := range []int{2, 4, 8} {
			var tagB, ctrl, steps, simTime float64
			const seeds = 10
			for seed := int64(1); seed <= seeds; seed++ {
				res, err := conformance.Run(conformance.Config{
					Maker:       p.Maker,
					Procs:       procs,
					InitialMsgs: 20,
					ChainBudget: 20,
					ChainProb:   0.7,
					Seed:        seed,
				})
				if err != nil {
					return nil, fmt.Errorf("%s procs=%d seed=%d: %w", p.Name, procs, seed, err)
				}
				tagB += res.Stats.TagBytesPerUser()
				ctrl += res.Stats.ControlPerUser()
				steps += float64(res.Steps)
				simTime += float64(res.EndTime)
			}
			rows = append(rows, overheadRow{
				Protocol:       p.Name,
				Procs:          procs,
				TagBytesPerMsg: tagB / seeds,
				CtrlPerMsg:     ctrl / seeds,
				Steps:          steps / seeds,
				SimTime:        simTime / seeds,
			})
		}
	}
	return rows, nil
}

// overhead measures protocol cost: piggyback bytes, control messages,
// simulated latency.
func overhead(jsonOut bool) error {
	rows, err := overheadData()
	if err != nil {
		return err
	}
	if jsonOut {
		return printJSON(os.Stdout, rows)
	}
	fmt.Println("== E1: protocol overhead by system size (20 initial + 20 chained messages, mean of 10 seeds) ==")
	fmt.Printf("%-12s %-6s %-14s %-14s %-12s %-10s\n",
		"protocol", "procs", "tagB/msg", "ctrl/msg", "steps", "simTime")
	for _, row := range rows {
		fmt.Printf("%-12s %-6d %-14.1f %-14.2f %-12.0f %-10.0f\n",
			row.Protocol, row.Procs, row.TagBytesPerMsg, row.CtrlPerMsg, row.Steps, row.SimTime)
	}
	fmt.Println("expected shape: tag bytes grow ~n² for causal-rst, sublinearly for causal-ses;")
	fmt.Println("only sync pays control messages (3/msg) and its latency dominates (serialization).")
	return nil
}

// broadcastBench compares the causal algorithms on broadcast workloads —
// the paper's multicast extension. BSS exists only for broadcasts; RST
// and SES handle them as unicast fans.
func broadcastBench() error {
	fmt.Println("== E4: multicast extension — causal algorithms on broadcast workloads ==")
	fmt.Printf("%-12s %-6s %-14s %-10s\n", "protocol", "procs", "tagB/msg", "violations")
	e, err := specEntry("causal-b2")
	if err != nil {
		return err
	}
	for _, name := range []string{"causal-rst", "causal-ses", "causal-bss"} {
		p, ok := registry.ByName(name)
		if !ok {
			return fmt.Errorf("protocol %q missing from registry", name)
		}
		for _, procs := range []int{4, 8, 16} {
			var tagB float64
			viol := 0
			const seeds = 8
			for seed := int64(1); seed <= seeds; seed++ {
				res, err := conformance.Run(conformance.Config{
					Maker:       p.Maker,
					Procs:       procs,
					InitialMsgs: 6,
					ChainBudget: 6,
					ChainProb:   0.6,
					Seed:        seed,
					Broadcast:   true,
				})
				if err != nil {
					return fmt.Errorf("%s procs=%d seed=%d: %w", p.Name, procs, seed, err)
				}
				tagB += res.Stats.TagBytesPerUser()
				if _, bad := check.FindViolation(res.View, e.Pred); bad {
					viol++
				}
			}
			fmt.Printf("%-12s %-6d %-14.1f %d/%d\n", p.Name, procs, tagB/seeds, viol, seeds)
		}
	}
	fmt.Println("expected shape: all three stay causally ordered; BSS's single O(n) vector")
	fmt.Println("per broadcast undercuts RST's O(n²) matrix as n grows.")
	return nil
}

// scalingRow is one predicate graph's timing in the classifier-scaling
// experiment.
type scalingRow struct {
	Graph        string `json:"graph"`
	Edges        int    `json:"edges"`
	FastUS       int64  `json:"fast_us"`
	ExhaustiveUS int64  `json:"exhaustive_us"`
}

// scaling measures classifier cost against predicate size. Crowns have a
// single simple cycle (enumeration is trivial); dense all-β graphs have
// exponentially many, which is where the polynomial walk-based minimum
// pays off (DESIGN.md ablation 1).
func scaling(jsonOut bool) error {
	var rows []scalingRow
	measure := func(name string, p *predicate.Predicate, reps int) error {
		g := pgraph.New(p)
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, _, ok := g.MinOrder(); !ok {
				return fmt.Errorf("%s: no cycle", name)
			}
		}
		fast := time.Since(start).Microseconds() / int64(reps)
		start = time.Now()
		for i := 0; i < reps; i++ {
			if _, _, ok := g.MinOrderExhaustive(); !ok {
				return fmt.Errorf("%s: no cycle", name)
			}
		}
		exh := time.Since(start).Microseconds() / int64(reps)
		rows = append(rows, scalingRow{Graph: name, Edges: g.NumEdges(), FastUS: fast, ExhaustiveUS: exh})
		return nil
	}
	for _, k := range []int{2, 8, 32, 64} {
		if err := measure(fmt.Sprintf("crown-%d", k), catalog.Crown(k), 20); err != nil {
			return err
		}
	}
	// Dense all-β complete graphs: i.s -> j.r for every ordered pair.
	dense := func(n int) *predicate.Predicate {
		vars := make([]string, n)
		for i := range vars {
			vars[i] = fmt.Sprintf("x%d", i+1)
		}
		b := predicate.NewBuilder(vars...)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					b.Atom(vars[i], predicate.S, vars[j], predicate.R)
				}
			}
		}
		p, err := b.Build()
		if err != nil {
			panic(err)
		}
		return p
	}
	for _, n := range []int{5, 7, 9} {
		if err := measure(fmt.Sprintf("dense-K%d", n), dense(n), 3); err != nil {
			return err
		}
	}
	if jsonOut {
		return printJSON(os.Stdout, rows)
	}
	fmt.Println("== E2: classifier scaling — fast (0-1 BFS) vs exhaustive cycle enumeration ==")
	fmt.Printf("%-12s %-10s %-14s %-14s\n", "graph", "edges", "fast(µs)", "exhaustive(µs)")
	for _, row := range rows {
		fmt.Printf("%-12s %-10d %-14d %-14d\n", row.Graph, row.Edges, row.FastUS, row.ExhaustiveUS)
	}
	fmt.Println("expected shape: exhaustive wins on single-cycle crowns; the walk-based")
	fmt.Println("minimum wins as the simple-cycle count explodes on dense graphs.")
	return nil
}

// inhibitory reproduces Section 3.2 denotationally: the sizes of X_P for
// the four canonical enabled-set protocols over a bounded universe, and
// the mechanical information-condition checks.
func inhibitory() error {
	fmt.Println("== E5: the denotational protocol model (§3.2) over a bounded universe ==")
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 1},
		{ID: 2, From: 1, To: 2},
	}
	fmt.Println("universe: a channel pair plus relay (m0, m1: P0->P1; m2: P1->P2)")
	fmt.Printf("%-16s %-10s %-10s %-10s %-10s\n",
		"protocol", "reachable", "complete", "tagless?", "tagged?")
	for _, p := range []inhib.Protocol{
		inhib.AllEnabled{}, inhib.FIFODelivery{}, inhib.CausalDelivery{}, inhib.SyncGate{},
	} {
		res, err := inhib.Explore(p, msgs, 3)
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name(), err)
		}
		tagless := inhib.CheckTaglessCondition(p, res).Holds
		tagged := inhib.CheckTaggedCondition(p, res).Holds
		fmt.Printf("%-16s %-10d %-10d %-10v %-10v\n",
			p.Name(), len(res.Reachable), len(res.Complete), tagless, tagged)
	}
	fmt.Println("expected shape: inhibition shrinks X_P monotonically; FIFO/causal meet the")
	fmt.Println("tagged condition but not the tagless one; the sync gate fails even tagged —")
	fmt.Println("the mechanical face of 'logical synchrony needs control messages'.")
	return nil
}

// synthesis compares generated protocols with the handwritten ones.
func synthesis() error {
	fmt.Println("== E6: protocol synthesis from predicates (companion-paper direction) ==")
	fmt.Printf("%-22s %-14s %-12s %-10s\n", "specification", "strategy", "tagB/msg", "safe?")
	for _, name := range []string{
		"fifo", "local-forward-flush", "causal-b2", "global-forward-flush", "async-a",
	} {
		e, err := specEntry(name)
		if err != nil {
			return err
		}
		maker, plan, err := synth.Generate(e.Pred)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		cfg := conformance.Config{
			Maker:       maker,
			Procs:       3,
			InitialMsgs: 14,
			ChainBudget: 10,
			ChainProb:   0.7,
			Colors: []event.Color{
				event.ColorNone, event.ColorNone, event.ColorNone, event.ColorRed,
			},
		}
		var tagB float64
		safe := true
		const seeds = 10
		for seed := int64(1); seed <= seeds; seed++ {
			cfg.Seed = seed
			res, err := conformance.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s seed %d: %w", name, seed, err)
			}
			tagB += res.Stats.TagBytesPerUser()
			if _, bad := check.FindViolation(res.View, e.Pred); bad {
				safe = false
			}
		}
		fmt.Printf("%-22s %-14s %-12.1f %v\n", name, plan.Strategy, tagB/seeds, safe)
	}
	fmt.Println("expected shape: channel-local patterns compile to cheap sequence tags;")
	fmt.Println("global order-1 patterns fall back to full causal enforcement; all safe.")
	return nil
}

// latticeBench prints the empirical inclusion lattice of the core
// specifications over bounded universes — the paper's "specifications as
// subsets of X" picture.
func latticeBench() error {
	fmt.Println("== E7: the specification lattice, empirically ==")
	specs := map[string]*predicate.Predicate{}
	for _, name := range []string{"causal-b2", "fifo", "sync-2", "kweaker-1-channel"} {
		e, err := specEntry(name)
		if err != nil {
			return err
		}
		specs[name] = e.Pred
	}
	for _, procs := range []int{2, 3} {
		lat, err := lattice.Compute(lattice.Config{Msgs: 3, Procs: procs}, specs)
		if err != nil {
			return err
		}
		fmt.Printf("%d processes: ", procs)
		fmt.Println(strings.TrimSpace(strings.ReplaceAll(lat.String(), "\n", "; ")))
	}
	fmt.Println("expected shape: the 3-process lattice is the strict chain")
	fmt.Println("sync ⊂ causal ⊂ fifo ⊂ kweaker; on 2 processes causal and fifo merge")
	fmt.Println("(a classical coincidence the lattice rediscovers).")
	return nil
}

// faultCell is one (protocol, fault plan) cell of the fault matrix,
// summed over seeds.
type faultCell struct {
	Plan           string `json:"plan"`
	Retransmits    int    `json:"retransmits"`
	DupsDropped    int    `json:"dups_dropped"`
	FaultsInjected int    `json:"faults_injected"`
	Violations     int    `json:"violations"`
}

// faultsRow is one protocol's row of the fault matrix.
type faultsRow struct {
	Protocol string      `json:"protocol"`
	Spec     string      `json:"spec"`
	Cells    []faultCell `json:"cells"`
}

// faultsData runs the protocol catalog over every fault plan.
func faultsData() ([]faultsRow, error) {
	plans := []struct {
		name string
		plan transport.FaultPlan
	}{
		{"drop20+dup10", transport.FaultPlan{DropRate: 0.2, DupRate: 0.1}},
		{"drop40", transport.FaultPlan{DropRate: 0.4}},
		{"jitter30", transport.FaultPlan{DelayJitter: 0.3}},
		{"partition", transport.FaultPlan{Partitions: []transport.Partition{
			{A: []event.ProcID{0}, B: []event.ProcID{1, 2}, Heal: 12},
		}}},
	}
	cases := []struct {
		name  string
		maker protocol.Maker
		spec  string
	}{
		{"tagless", tagless.Maker, ""},
		{"fifo", fifo.Maker, "fifo"},
		{"causal-rst", causal.RSTMaker, "causal-b2"},
		{"causal-ses", causal.SESMaker, "causal-b2"},
		{"sync", syncproto.Maker, "sync-2"},
		{"sync-ra", syncproto.RAMaker, "sync-2"},
	}
	const seeds = 3
	var rows []faultsRow
	for _, c := range cases {
		cfg := conformance.Config{
			Maker:       c.maker,
			Procs:       3,
			InitialMsgs: 20,
			ChainBudget: 10,
			ChainProb:   0.6,
		}
		var pred *predicate.Predicate
		specName := "(liveness)"
		if c.spec != "" {
			e, err := specEntry(c.spec)
			if err != nil {
				return nil, err
			}
			pred, specName = e.Pred, c.spec
		}
		planList := make([]transport.FaultPlan, len(plans))
		for i, p := range plans {
			planList[i] = p.plan
		}
		cells, err := conformance.FaultMatrix(cfg, planList, seeds, pred)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		row := faultsRow{Protocol: c.name, Spec: specName}
		for i, cell := range cells {
			row.Cells = append(row.Cells, faultCell{
				Plan:           plans[i].name,
				Retransmits:    cell.Stats.Retransmits,
				DupsDropped:    cell.Stats.DupsDropped,
				FaultsInjected: cell.Stats.FaultsInjected,
				Violations:     cell.Violations,
			})
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// faults runs the protocol catalog over a lossy live network: the
// reliable transport sublayer must preserve every specification while
// the fault injector drops, duplicates and partitions transmissions.
func faults(jsonOut bool) error {
	rows, err := faultsData()
	if err != nil {
		return err
	}
	if jsonOut {
		return printJSON(os.Stdout, rows)
	}
	fmt.Println("== E9: lossy network fault matrix — live harness with reliable transport ==")
	fmt.Println("cell: retransmits / dups dropped / faults injected, summed over seeds; 'viol' flags spec violations")
	fmt.Printf("%-12s", "protocol")
	if len(rows) > 0 {
		for _, cell := range rows[0].Cells {
			fmt.Printf(" %-22s", cell.Plan)
		}
	}
	fmt.Println(" spec")
	for _, row := range rows {
		fmt.Printf("%-12s", row.Protocol)
		for _, cell := range row.Cells {
			s := fmt.Sprintf("%d/%d/%d", cell.Retransmits, cell.DupsDropped, cell.FaultsInjected)
			if cell.Violations > 0 {
				s += fmt.Sprintf(" viol:%d", cell.Violations)
			}
			fmt.Printf(" %-22s", s)
		}
		fmt.Printf(" %s\n", row.Spec)
	}
	fmt.Println("expected shape: every cell is violation-free — the transport restores the")
	fmt.Println("paper's reliable-channel axioms, so each protocol's guarantees survive the")
	fmt.Println("faults; retransmit/dup work scales with the injected fault rates.")
	return nil
}

// discussion classifies the §5 specifications with explanations.
func discussion() error {
	fmt.Println("== E3: §5 discussion specifications ==")
	for _, name := range []string{
		"fifo", "kweaker-1", "local-forward-flush", "global-forward-flush",
		"handoff", "second-before-first",
	} {
		e, err := specEntry(name)
		if err != nil {
			return err
		}
		res, err := classify.Classify(e.Pred)
		if err != nil {
			return err
		}
		fmt.Printf("%s (%s):\n  class: %s (paper: %s)\n", e.Title, e.Name, res.Class, e.PaperClass)
		if e.Notes != "" {
			fmt.Printf("  note: %s\n", e.Notes)
		}
	}
	return nil
}
