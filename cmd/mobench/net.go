// The net subcommand: E12's cross-runtime matrix — every catalog
// protocol's lockstep workload timed on the in-memory sim and on a
// 3-process loopback TCP mesh (clean / lossy / crash-restart cells),
// asserting the user views match byte for byte. -smoke upgrades the
// mesh side to real OS processes: it spawns 3 mod daemons, drives the
// causal workload over their client sockets, and diffs the reassembled
// view against the sim reference, exiting non-zero on any divergence.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"msgorder/internal/conformance"
	"msgorder/internal/event"
	"msgorder/internal/modrpc"
	"msgorder/internal/protocols/registry"
	"msgorder/internal/userview"
)

// netCellRow is one (protocol, disturbance) cell of the E12 table.
type netCellRow struct {
	Cell        string  `json:"cell"`
	Match       bool    `json:"view_match"`
	MeshUS      int64   `json:"mesh_elapsed_us"`
	PerMsgUS    float64 `json:"per_msg_us"`
	MsgsPerSec  float64 `json:"msgs_per_sec"`
	Retransmits int     `json:"retransmits"`
	IdleSkips   int     `json:"idle_skips"`
	FramesOut   int     `json:"frames_out"`
	BytesOut    int     `json:"bytes_out"`
	Faults      int     `json:"faults_injected"`
	Crashes     int     `json:"crashes"`
	Recoveries  int     `json:"recoveries"`
}

// netRow is one protocol's row: the sim baseline plus the mesh cells.
type netRow struct {
	Protocol string       `json:"protocol"`
	SimUS    int64        `json:"sim_elapsed_us"`
	Msgs     int          `json:"msgs"`
	Cells    []netCellRow `json:"cells"`
}

// netData runs the cross-runtime matrix and folds it into rows.
func netData(msgs int, seed int64) ([]netRow, error) {
	var protos []conformance.NetProtocol
	for _, e := range registry.Catalog() {
		protos = append(protos, conformance.NetProtocol{Name: e.Name, Maker: e.Maker, Colors: e.Colors})
	}
	walDir, err := os.MkdirTemp("", "mobench-net-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)
	cells, err := conformance.NetMatrix(conformance.NetMatrixConfig{
		Procs: 3, Msgs: msgs, Seed: seed, WALDir: walDir,
	}, protos)
	if err != nil {
		return nil, err
	}
	byProto := map[string]*netRow{}
	var rows []*netRow
	for _, c := range cells {
		row := byProto[c.Protocol]
		if row == nil {
			row = &netRow{Protocol: c.Protocol, SimUS: c.SimElapsed.Microseconds(), Msgs: msgs}
			byProto[c.Protocol] = row
			rows = append(rows, row)
		}
		meshUS := c.MeshElapsed.Microseconds()
		out := netCellRow{
			Cell:        c.Cell,
			Match:       c.Match,
			MeshUS:      meshUS,
			PerMsgUS:    float64(meshUS) / float64(msgs),
			Retransmits: c.Transport.Retransmits,
			IdleSkips:   c.Transport.IdleSkips,
			FramesOut:   c.Mesh.FramesOut,
			BytesOut:    c.Mesh.BytesOut,
			Faults:      c.Mesh.FaultsInjected,
			Crashes:     c.Stats.Crashes,
			Recoveries:  c.Stats.Recoveries,
		}
		if meshUS > 0 {
			out.MsgsPerSec = float64(msgs) / (float64(meshUS) / 1e6)
		}
		row.Cells = append(row.Cells, out)
	}
	final := make([]netRow, len(rows))
	for i, r := range rows {
		final[i] = *r
	}
	return final, nil
}

// netCmd runs E12:
//
//	mobench net                    # print the cross-runtime table
//	mobench net -json              # write BENCH_net.json into -outdir
//	mobench net -smoke -modbin M   # 3 real mod processes vs sim, diff views
func netCmd(args []string) error {
	fs := flag.NewFlagSet("mobench net", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "write the BENCH_net.json snapshot instead of a table")
	outdir := fs.String("outdir", ".", "directory to write BENCH_net.json into")
	msgs := fs.Int("msgs", 16, "lockstep workload length per cell")
	seed := fs.Int64("seed", 5, "workload seed")
	smoke := fs.Bool("smoke", false, "spawn real mod OS processes and diff their view against the sim")
	modbin := fs.String("modbin", "", "path to the mod binary (-smoke)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *smoke {
		if *modbin == "" {
			return fmt.Errorf("-smoke requires -modbin (a built mod binary)")
		}
		return netSmoke(*modbin, *msgs, *seed)
	}
	rows, err := netData(*msgs, *seed)
	if err != nil {
		return err
	}
	mismatches := 0
	for _, row := range rows {
		for _, c := range row.Cells {
			if !c.Match {
				mismatches++
			}
		}
	}
	if *jsonOut {
		if err := writeBench(*outdir, "BENCH_net.json", "E12 cross-runtime net matrix", rows); err != nil {
			return err
		}
	} else {
		fmt.Println("== E12: cross-runtime matrix — in-memory sim vs 3-process loopback TCP mesh ==")
		fmt.Printf("lockstep workload, %d messages; cell: per-msg latency / throughput / retransmits / idle-skips\n", *msgs)
		fmt.Printf("%-12s %-9s", "protocol", "sim")
		for _, cell := range conformance.NetMatrixCells() {
			fmt.Printf(" %-30s", cell)
		}
		fmt.Println(" views")
		for _, row := range rows {
			fmt.Printf("%-12s %-9s", row.Protocol,
				(time.Duration(row.SimUS) * time.Microsecond).Round(10*time.Microsecond))
			match := true
			for _, c := range row.Cells {
				s := fmt.Sprintf("%.0fµs %.0f/s r%d i%d",
					c.PerMsgUS, c.MsgsPerSec, c.Retransmits, c.IdleSkips)
				if !c.Match {
					s += " DIVERGED"
					match = false
				}
				fmt.Printf(" %-30s", s)
			}
			if match {
				fmt.Println(" identical")
			} else {
				fmt.Println(" DIVERGED")
			}
		}
		fmt.Println("expected shape: every cell 'identical' — loss and crash-restart are invisible")
		fmt.Println("in the user view; socket latency dominates per-message cost; idle-skips show")
		fmt.Println("the retransmit loop parking between lockstep steps.")
	}
	if mismatches > 0 {
		return fmt.Errorf("%d cells diverged between sim and mesh", mismatches)
	}
	return nil
}

// modProc is one spawned mod daemon in the smoke test.
type modProc struct {
	cmd    *exec.Cmd
	client *modrpc.Client
	done   chan error
}

// freeNetPorts reserves n loopback addresses for the smoke mesh.
func freeNetPorts(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}

// spawnMod starts one mod daemon and waits for its ready line.
func spawnMod(modbin string, id int, peers string) (*modProc, error) {
	cmd := exec.Command(modbin,
		"-id", fmt.Sprint(id), "-peers", peers,
		"-proto", "causal-rst", "-spec", "causal-b2",
		"-client", "127.0.0.1:0")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &modProc{cmd: cmd, done: make(chan error, 1)}
	readyc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "mod ready ") {
				for _, f := range strings.Fields(line) {
					if v, ok := strings.CutPrefix(f, "client="); ok {
						readyc <- v
					}
				}
			}
		}
		p.done <- cmd.Wait()
	}()
	select {
	case clientAddr := <-readyc:
		c, err := modrpc.Dial(clientAddr, 2*time.Second)
		if err != nil {
			cmd.Process.Kill()
			return nil, err
		}
		p.client = c
		return p, nil
	case err := <-p.done:
		return nil, fmt.Errorf("mod %d exited before ready: %v", id, err)
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("mod %d never became ready", id)
	}
}

// netSmoke is the verify-gate path: 3 real mod OS processes on
// loopback, the causal lockstep workload driven over their client
// sockets, and the reassembled user view diffed against the in-memory
// sim's. Any divergence (or daemon failure) is a non-zero exit.
func netSmoke(modbin string, msgCount int, seed int64) error {
	const procs = 3
	e, ok := registry.ByName("causal-rst")
	if !ok {
		return fmt.Errorf("causal-rst missing from registry")
	}
	msgs := conformance.NetWorkload(conformance.NetMatrixConfig{
		Procs: procs, Msgs: msgCount, Seed: seed,
	}, e.Colors)
	simView, err := conformance.SimLockstep(e.Maker, procs, seed, msgs)
	if err != nil {
		return fmt.Errorf("sim reference: %w", err)
	}

	addrs, err := freeNetPorts(procs)
	if err != nil {
		return err
	}
	peers := strings.Join(addrs, ",")
	mods := make([]*modProc, procs)
	defer func() {
		for _, p := range mods {
			if p == nil {
				continue
			}
			if p.client != nil {
				p.client.Close()
			}
			p.cmd.Process.Kill()
			<-p.done
		}
	}()
	for i := range mods {
		p, err := spawnMod(modbin, i, peers)
		if err != nil {
			return err
		}
		mods[i] = p
	}

	start := time.Now()
	want := make([]int, procs)
	for _, m := range msgs {
		if err := mods[m.From].client.Invoke(int(m.ID), m.To, m.Color); err != nil {
			return fmt.Errorf("invoke m%d: %w", m.ID, err)
		}
		want[m.To]++
		if err := mods[m.To].client.Wait(want[m.To], 15*time.Second); err != nil {
			return fmt.Errorf("waiting for m%d: %w", m.ID, err)
		}
	}
	elapsed := time.Since(start)

	procEvents := make([][]event.Event, procs)
	for p, mp := range mods {
		evs, _, err := mp.client.Events()
		if err != nil {
			return err
		}
		procEvents[p] = evs
	}
	meshView, err := userview.New(msgs, procEvents)
	if err != nil {
		return fmt.Errorf("multi-process view invalid: %w", err)
	}
	if simKey, meshKey := simView.Key(), meshView.Key(); simKey != meshKey {
		return fmt.Errorf("views diverge between sim and mod processes\n sim: %s\nmesh: %s", simKey, meshKey)
	}

	for i, p := range mods {
		if err := p.client.Shutdown(); err != nil {
			return fmt.Errorf("shutdown mod %d: %w", i, err)
		}
	}
	for i, p := range mods {
		select {
		case err := <-p.done:
			p.done <- nil // the deferred cleanup drains this channel again
			if err != nil {
				return fmt.Errorf("mod %d exit: %w", i, err)
			}
		case <-time.After(10 * time.Second):
			return fmt.Errorf("mod %d did not exit after shutdown", i)
		}
	}
	fmt.Printf("net smoke: %d msgs across 3 mod processes in %s (%.0f msg/s), views identical\n",
		len(msgs), elapsed.Round(time.Millisecond), float64(len(msgs))/elapsed.Seconds())
	return nil
}
