// The mux subcommand: E17's multi-tenant channel matrix — every
// catalog protocol becomes one channel on a single shared loopback TCP
// mesh, all channels' lockstep workloads interleave round-robin, and
// each channel's user view is validated byte-for-byte against its
// standalone in-memory sim run under {clean, lossy, crash-restart}
// disturbances. A second table measures what multiplexing costs: a
// tagless channel's per-message overhead solo vs sharing the mesh with
// a tagged causal channel under equal open-loop load (compare the
// throughput against E13's standalone numbers). -json writes
// BENCH_mux.json, then re-reads and re-validates the file so a
// truncated or diverging snapshot is an error, not an artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"msgorder/internal/conformance"
	"msgorder/internal/protocols/registry"
)

// muxProtoList resolves a comma-separated protocol list ("" = the full
// catalog) into mux-matrix channel inputs.
func muxProtoList(list string) ([]conformance.NetProtocol, error) {
	var names []string
	if list == "" {
		for _, e := range registry.Catalog() {
			names = append(names, e.Name)
		}
	} else {
		names = strings.Split(list, ",")
	}
	var out []conformance.NetProtocol
	for _, name := range names {
		e, ok := registry.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown protocol %q (see 'mobench protocols')", name)
		}
		out = append(out, conformance.NetProtocol{Name: e.Name, Maker: e.Maker, Colors: e.Colors})
	}
	return out, nil
}

// muxMatrixData runs the mux matrix in a scratch WAL directory.
func muxMatrixData(protos []conformance.NetProtocol, cfg conformance.NetMatrixConfig) ([]conformance.MuxCell, error) {
	dir, err := os.MkdirTemp("", "mobench-mux-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cfg.WALDir = dir
	return conformance.MuxMatrix(cfg, protos)
}

// muxLoadData runs the overhead comparison: tagless measured against a
// causal-rst companion.
func muxLoadData(msgs int, seed int64) ([]conformance.MuxLoadRow, error) {
	tl, ok := registry.ByName("tagless")
	if !ok {
		return nil, fmt.Errorf("catalog protocol tagless missing")
	}
	cr, ok := registry.ByName("causal-rst")
	if !ok {
		return nil, fmt.Errorf("catalog protocol causal-rst missing")
	}
	return conformance.MuxLoad(
		conformance.LoadConfig{Msgs: msgs, Seed: seed},
		conformance.NetProtocol{Name: tl.Name, Maker: tl.Maker, Colors: tl.Colors},
		conformance.NetProtocol{Name: cr.Name, Maker: cr.Maker, Colors: cr.Colors})
}

// muxCellBad returns a non-empty reason when a matrix cell fails its
// acceptance criteria; both the live run and the snapshot re-read
// validate through it.
func muxCellBad(c conformance.MuxCell) string {
	switch {
	case !c.Match:
		return "multiplexed view diverges from the standalone sim reference"
	case c.UnknownDrops != 0:
		return fmt.Sprintf("%d envelopes dropped as unknown under symmetric opens", c.UnknownDrops)
	case c.Protocol == "tagless" && (c.Stats.UserTagBytes != 0 || c.Stats.ControlMessages != 0):
		return fmt.Sprintf("tagless channel paid overhead: tags=%d ctrl=%d",
			c.Stats.UserTagBytes, c.Stats.ControlMessages)
	case c.Cell == "lossy" && c.Mesh.FaultsInjected == 0:
		return "lossy cell degenerated to clean (no faults injected)"
	case c.Cell == "crash-restart" && (c.Stats.Crashes != 1 || c.Stats.Recoveries != 1):
		return fmt.Sprintf("crashes/recoveries = %d/%d, want 1/1", c.Stats.Crashes, c.Stats.Recoveries)
	}
	return ""
}

// muxLoadBad returns a non-empty reason when an overhead row fails:
// zero throughput anywhere, or a tagless channel whose per-message
// overhead changed because a tagged channel shared its connection.
func muxLoadBad(r conformance.MuxLoadRow) string {
	switch {
	case r.MsgsPerSec <= 0 || r.Msgs <= 0:
		return "zero throughput"
	case r.Protocol == "tagless" && (r.TagBytesPerMsg != 0 || r.CtrlPerMsg != 0):
		return fmt.Sprintf("tagless overhead changed under multiplexing: tags=%.1f ctrl=%.2f",
			r.TagBytesPerMsg, r.CtrlPerMsg)
	}
	return ""
}

// muxBenchRows is the BENCH_mux.json payload: the conformance matrix
// plus the overhead comparison.
type muxBenchRows struct {
	Matrix []conformance.MuxCell    `json:"matrix"`
	Load   []conformance.MuxLoadRow `json:"load"`
}

// validateBenchMux re-reads a written BENCH_mux.json and fails unless
// it parses and every matrix cell and load row passes — the mux-smoke
// gate's whole check is this function's exit code.
func validateBenchMux(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("re-reading %s: %w", path, err)
	}
	var f struct {
		Experiment string       `json:"experiment"`
		Rows       muxBenchRows `json:"rows"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		return fmt.Errorf("%s is not valid JSON: %w", path, err)
	}
	if f.Experiment == "" || len(f.Rows.Matrix) == 0 || len(f.Rows.Load) == 0 {
		return fmt.Errorf("%s has no rows", path)
	}
	for _, c := range f.Rows.Matrix {
		if bad := muxCellBad(c); bad != "" {
			return fmt.Errorf("%s: %s/%s: %s", path, c.Protocol, c.Cell, bad)
		}
	}
	for _, r := range f.Rows.Load {
		if bad := muxLoadBad(r); bad != "" {
			return fmt.Errorf("%s: %s/%s: %s", path, r.Runtime, r.Protocol, bad)
		}
	}
	return nil
}

// benchMux writes and re-validates the BENCH_mux.json snapshot for
// 'mobench bench' (the full catalog matrix plus the overhead rows).
func benchMux(outdir string) error {
	protos, err := muxProtoList("")
	if err != nil {
		return err
	}
	cells, err := muxMatrixData(protos, conformance.NetMatrixConfig{Msgs: 16, Seed: 5})
	if err != nil {
		return err
	}
	loadRows, err := muxLoadData(2000, 5)
	if err != nil {
		return err
	}
	if err := writeBench(outdir, "BENCH_mux.json", "E17 multiplexed channels: conformance matrix + overhead",
		muxBenchRows{Matrix: cells, Load: loadRows}); err != nil {
		return err
	}
	return validateBenchMux(filepath.Join(outdir, "BENCH_mux.json"))
}

// muxCmd runs E17:
//
//	mobench mux            # print the matrix + overhead tables
//	mobench mux -json      # write + re-validate BENCH_mux.json
//	mobench mux -smoke     # 3 channels with distinct specs (the CI gate)
func muxCmd(args []string) error {
	fs := flag.NewFlagSet("mobench mux", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "write the BENCH_mux.json snapshot instead of tables")
	outdir := fs.String("outdir", ".", "directory to write BENCH_mux.json into (and find the BENCH_load.json baseline)")
	msgs := fs.Int("msgs", 16, "lockstep workload length per channel")
	procs := fs.Int("procs", 3, "mesh size")
	seed := fs.Int64("seed", 5, "workload seed")
	protos := fs.String("protos", "", "comma-separated channel protocol list (default: full catalog)")
	loadMsgs := fs.Int("load-msgs", 2000, "open-loop workload length per channel in the overhead comparison (0 = skip)")
	smoke := fs.Bool("smoke", false, "run the fast gate: tagless/fifo/causal-rst channels, no overhead rows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	list := *protos
	if *smoke {
		list = "tagless,fifo,causal-rst"
		*loadMsgs = 0
		*msgs = 8
	}
	plist, err := muxProtoList(list)
	if err != nil {
		return err
	}
	cells, err := muxMatrixData(plist, conformance.NetMatrixConfig{
		Procs: *procs, Msgs: *msgs, Seed: *seed,
	})
	if err != nil {
		return err
	}
	for _, c := range cells {
		if bad := muxCellBad(c); bad != "" {
			return fmt.Errorf("%s/%s: %s", c.Protocol, c.Cell, bad)
		}
	}
	var loadRows []conformance.MuxLoadRow
	if *loadMsgs > 0 {
		if loadRows, err = muxLoadData(*loadMsgs, *seed); err != nil {
			return err
		}
		for _, r := range loadRows {
			if bad := muxLoadBad(r); bad != "" {
				return fmt.Errorf("%s/%s: %s", r.Runtime, r.Protocol, bad)
			}
		}
	}
	if *jsonOut {
		if err := writeBench(*outdir, "BENCH_mux.json", "E17 multiplexed channels: conformance matrix + overhead",
			muxBenchRows{Matrix: cells, Load: loadRows}); err != nil {
			return err
		}
		return validateBenchMux(filepath.Join(*outdir, "BENCH_mux.json"))
	}
	fmt.Println("== E17: multiplexed channels — per-channel views vs standalone, one shared mesh ==")
	fmt.Printf("%-12s %-15s %6s %8s %6s %8s %12s %10s\n",
		"channel", "cell", "match", "tagB", "ctrl", "retrans", "unknownDrop", "mux(ms)")
	for _, c := range cells {
		fmt.Printf("%-12s %-15s %6t %8d %6d %8d %12d %10.1f\n",
			c.Protocol, c.Cell, c.Match, c.Stats.UserTagBytes, c.Stats.ControlMessages,
			c.Transport.Retransmits, c.UnknownDrops,
			float64(c.MuxElapsed.Microseconds())/1000)
	}
	if len(loadRows) > 0 {
		// loadBaseline (shard.go) keys rows "runtime/protocol"; the
		// E13 comparison wants the standalone mesh number.
		base := loadBaseline(*outdir)
		fmt.Println()
		fmt.Println("-- multiplexing overhead: tagless solo vs sharing the mesh with causal-rst --")
		fmt.Printf("%-10s %-12s %-12s %10s %10s %8s %8s\n",
			"runtime", "channel", "companion", "msgs/sec", "tagB/msg", "ctrl/msg", "vs E13")
		for _, r := range loadRows {
			companion, vs := "-", "-"
			if r.Companion != "" {
				companion = r.Companion
			}
			if b := base["mesh/"+r.Protocol]; b > 0 {
				vs = fmt.Sprintf("%.2fx", r.MsgsPerSec/b)
			}
			fmt.Printf("%-10s %-12s %-12s %10.0f %10.1f %8.2f %8s\n",
				r.Runtime, r.Protocol, companion, r.MsgsPerSec, r.TagBytesPerMsg, r.CtrlPerMsg, vs)
		}
	}
	fmt.Println("expected shape: every cell matches — per-channel protocol instances make")
	fmt.Println("multiplexing invisible in the view; the tagless channel's tagB/ctrl stay 0")
	fmt.Println("even when a tagged channel shares its connections (only wall-clock shifts,")
	fmt.Println("since shared runs split the same sockets between two channels' load).")
	return nil
}
