package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMuxCmdSmoke runs the CI gate: three channels with distinct
// guarantee levels over one shared mesh, every cell's view diffed
// against its standalone sim run.
func TestMuxCmdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second socket matrix")
	}
	if err := muxCmd([]string{"-smoke"}); err != nil {
		t.Fatal(err)
	}
}

// TestMuxCmdJSON checks that -json writes a BENCH_mux.json that parses
// with both payload sections populated and re-validates clean.
func TestMuxCmdJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("socket matrix + open-loop load")
	}
	dir := t.TempDir()
	if err := muxCmd([]string{
		"-json", "-outdir", dir, "-protos", "tagless,causal-rst",
		"-msgs", "8", "-load-msgs", "200",
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_mux.json"))
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Experiment string       `json:"experiment"`
		Rows       muxBenchRows `json:"rows"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Rows.Matrix) != 6 {
		t.Fatalf("matrix has %d cells, want 6 (2 channels x 3 cells)", len(f.Rows.Matrix))
	}
	if len(f.Rows.Load) != 3 {
		t.Fatalf("load has %d rows, want 3 (solo + 2 shared)", len(f.Rows.Load))
	}
}

// TestMuxCmdRejectsUnknownProtocol pins the flag-validation exit path.
func TestMuxCmdRejectsUnknownProtocol(t *testing.T) {
	if err := muxCmd([]string{"-protos", "nope"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

// TestValidateBenchMux pins the snapshot validator against corrupted
// and failing files — the artifacts the mux-smoke gate trusts.
func TestValidateBenchMux(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := validateBenchMux(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file validated")
	}
	if err := validateBenchMux(write("garbage.json", "{not json")); err == nil {
		t.Fatal("garbage validated")
	}
	if err := validateBenchMux(write("empty.json",
		`{"experiment":"e","rows":{"matrix":[],"load":[]}}`)); err == nil {
		t.Fatal("empty rows validated")
	}
	if err := validateBenchMux(write("diverged.json",
		`{"experiment":"e","rows":{"matrix":[{"Protocol":"fifo","Cell":"clean","Match":false}],
		  "load":[{"runtime":"solo","protocol":"tagless","msgs":10,"msgs_per_sec":100}]}}`)); err == nil {
		t.Fatal("diverged matrix cell validated")
	}
	if err := validateBenchMux(write("overhead.json",
		`{"experiment":"e","rows":{"matrix":[{"Protocol":"fifo","Cell":"clean","Match":true}],
		  "load":[{"runtime":"shared","protocol":"tagless","msgs":10,"msgs_per_sec":100,"tag_bytes_per_msg":4}]}}`)); err == nil {
		t.Fatal("tagless overhead regression validated")
	}
	if err := validateBenchMux(write("good.json",
		`{"experiment":"e","rows":{"matrix":[{"Protocol":"fifo","Cell":"clean","Match":true}],
		  "load":[{"runtime":"solo","protocol":"tagless","msgs":10,"msgs_per_sec":100}]}}`)); err != nil {
		t.Fatal(err)
	}
}
