package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"msgorder/internal/conformance"
)

// TestWriteBenchCreatesMissingOutdir is the regression test for the
// -outdir fix: snapshots must land in a directory that does not exist
// yet instead of failing at os.Create.
func TestWriteBenchCreatesMissingOutdir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "deeper")
	if err := writeBench(dir, "BENCH_test.json", "regression", []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_test.json"))
	if err != nil {
		t.Fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		t.Fatal(err)
	}
	if bf.Experiment != "regression" || bf.Rows == nil {
		t.Fatalf("envelope = %+v", bf)
	}
}

// TestLoadCmdJSON drives E13 end to end into a missing -outdir (the
// same regression path as above, through the subcommand) and checks
// the written BENCH_load.json parses with sane rows.
func TestLoadCmdJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket load run")
	}
	dir := filepath.Join(t.TempDir(), "not", "yet", "there")
	if err := loadCmd([]string{"-json", "-outdir", dir, "-msgs", "400", "-protos", "tagless"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_load.json"))
	if err != nil {
		t.Fatal(err)
	}
	var bf struct {
		Experiment string                   `json:"experiment"`
		Rows       []conformance.LoadResult `json:"rows"`
	}
	if err := json.Unmarshal(data, &bf); err != nil {
		t.Fatal(err)
	}
	if len(bf.Rows) != 2 {
		t.Fatalf("rows = %d, want sim + mesh", len(bf.Rows))
	}
	for _, r := range bf.Rows {
		if r.MsgsPerSec <= 0 || r.Msgs != 400 {
			t.Fatalf("row %+v", r)
		}
	}
	mesh := bf.Rows[1]
	if mesh.Runtime != "mesh" || mesh.BatchFactor < 1 {
		t.Fatalf("mesh row %+v: batching path not engaged", mesh)
	}
}

func TestLoadCmdTable(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket load run")
	}
	if err := loadCmd([]string{"-msgs", "300", "-protos", "tagless"}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCmdRejectsUnknownProtocol(t *testing.T) {
	if err := loadCmd([]string{"-msgs", "10", "-protos", "nope"}); err == nil {
		t.Fatal("unknown protocol must fail")
	}
}

// TestValidateBenchLoad pins the load-smoke gate: truncated JSON and
// zero-throughput rows must both be rejected.
func TestValidateBenchLoad(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "truncated.json")
	if err := os.WriteFile(bad, []byte(`{"experiment":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateBenchLoad(bad); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	zero := filepath.Join(dir, "zero.json")
	if err := os.WriteFile(zero, []byte(`{"experiment":"E13","rows":[{"runtime":"sim","protocol":"tagless","msgs":10,"msgs_per_sec":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateBenchLoad(zero); err == nil {
		t.Fatal("zero-throughput snapshot accepted")
	}
	if err := validateBenchLoad(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing snapshot accepted")
	}
	ok := filepath.Join(dir, "ok.json")
	if err := os.WriteFile(ok, []byte(`{"experiment":"E13","rows":[{"runtime":"sim","protocol":"tagless","msgs":10,"msgs_per_sec":123.4}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateBenchLoad(ok); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}
