// The trace and bench subcommands: E10's instrumented run exported as
// Chrome trace-event JSON (load in Perfetto / chrome://tracing), and the
// machine-readable benchmark snapshots checked in at the repo root.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"msgorder/internal/conformance"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/registry"
	"msgorder/internal/transport"
)

// printJSON renders v as indented JSON followed by a newline.
func printJSON(w io.Writer, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}

// makerByName resolves a protocol from the shared registry.
func makerByName(name string) (protocol.Maker, error) {
	e, ok := registry.ByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown protocol %q (try one of the 'protocols' rows)", name)
	}
	return e.Maker, nil
}

// traceCmd runs one instrumented conformance workload and exports the
// collected trace:
//
//	mobench trace -proto causal-rst -o trace.json -validate
//
// The chrome format opens directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing; one track per process plus a harness track for
// explorer/transport/stall records. -lossy reruns the workload on the
// live harness over a drop+dup fault plan so the trace also shows
// retransmissions and stall-detector verdicts.
func traceCmd(args []string) error {
	fs := flag.NewFlagSet("mobench trace", flag.ContinueOnError)
	proto := fs.String("proto", "causal-rst", "protocol under test (see 'mobench protocols')")
	out := fs.String("o", "trace.json", "output path ('-' for stdout)")
	format := fs.String("format", "chrome", "trace format: chrome | ndjson")
	validate := fs.Bool("validate", false, "re-read the chrome trace and check its causal invariants")
	seed := fs.Int64("seed", 1, "workload seed")
	procs := fs.Int("procs", 3, "process count")
	msgs := fs.Int("msgs", 8, "initial message count")
	lossy := fs.Bool("lossy", false, "run on the live lossy-network harness (adds transport/stall records)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "chrome" && *format != "ndjson" {
		return fmt.Errorf("unknown trace format %q", *format)
	}
	maker, err := makerByName(*proto)
	if err != nil {
		return err
	}

	col := obs.NewCollector()
	reg := obs.NewRegistry()
	cfg := conformance.Config{
		Maker:       maker,
		Procs:       *procs,
		InitialMsgs: *msgs,
		ChainBudget: *msgs,
		ChainProb:   0.7,
		Seed:        *seed,
		Tracer:      col,
		Metrics:     reg,
	}
	if *lossy {
		cfg.Faults = &transport.FaultPlan{DropRate: 0.2, DupRate: 0.1}
	}
	res, err := conformance.Run(cfg)
	if err != nil {
		return err
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "chrome":
		if err := obs.WriteChromeTrace(w, col.Records()); err != nil {
			return err
		}
	case "ndjson":
		if err := obs.WriteNDJSON(w, col.Records()); err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "trace: proto=%s procs=%d steps=%d undelivered=%d records=%d -> %s (%s)\n",
		*proto, *procs, res.Steps, len(res.Undelivered), col.Len(), *out, *format)
	snap := reg.Snapshot()
	for _, name := range snap.Names() {
		if v, ok := snap.Counters[name]; ok {
			fmt.Fprintf(os.Stderr, "  %-32s %d\n", name, v)
		}
		if v, ok := snap.Gauges[name]; ok {
			fmt.Fprintf(os.Stderr, "  %-32s %d (gauge)\n", name, v)
		}
		if h, ok := snap.Histograms[name]; ok {
			fmt.Fprintf(os.Stderr, "  %-32s n=%d mean=%.1f max=%d\n", name, h.Count, h.Mean(), h.Max)
		}
	}

	if *validate {
		if *format != "chrome" {
			return fmt.Errorf("-validate requires -format chrome")
		}
		if *out == "-" {
			return fmt.Errorf("-validate requires -o to name a file")
		}
		data, err := os.ReadFile(*out)
		if err != nil {
			return err
		}
		if err := obs.ValidateChromeTrace(data); err != nil {
			return fmt.Errorf("trace validation failed: %w", err)
		}
		fmt.Fprintln(os.Stderr, "trace: chrome trace validated (monotone tracks, every deliver after its send)")
	}
	return nil
}

// benchFile is the envelope written for each BENCH_*.json snapshot.
type benchFile struct {
	Experiment  string `json:"experiment"`
	GeneratedAt string `json:"generated_at"`
	Rows        any    `json:"rows"`
}

// writeBench writes one BENCH_*.json snapshot into outdir, creating
// the directory if missing.
func writeBench(outdir, name, experiment string, rows any) error {
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(outdir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := printJSON(f, benchFile{
		Experiment:  experiment,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Rows:        rows,
	}); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

// benchCmd regenerates the machine-readable benchmark snapshots at the
// repo root (or -outdir): BENCH_explore.json, BENCH_faults.json,
// BENCH_crashes.json, BENCH_net.json, BENCH_shard.json,
// BENCH_obs.json, BENCH_churn.json and BENCH_mux.json.
func benchCmd(args []string) error {
	fs := flag.NewFlagSet("mobench bench", flag.ContinueOnError)
	outdir := fs.String("outdir", ".", "directory to write BENCH_*.json into")
	if err := fs.Parse(args); err != nil {
		return err
	}
	exploreRows, err := exploreData([]string{"fifo", "causal-b2"})
	if err != nil {
		return err
	}
	if err := writeBench(*outdir, "BENCH_explore.json", "T3b exhaustive schedule exploration", exploreRows); err != nil {
		return err
	}
	faultsRows, err := faultsData()
	if err != nil {
		return err
	}
	if err := writeBench(*outdir, "BENCH_faults.json", "E9 lossy-network fault matrix", faultsRows); err != nil {
		return err
	}
	crashesRows, err := crashesData()
	if err != nil {
		return err
	}
	if err := writeBench(*outdir, "BENCH_crashes.json", "E11 crash/recovery matrix", crashesRows); err != nil {
		return err
	}
	netRows, err := netData(16, 5)
	if err != nil {
		return err
	}
	if err := writeBench(*outdir, "BENCH_net.json", "E12 cross-runtime net matrix", netRows); err != nil {
		return err
	}
	if err := benchShard(*outdir); err != nil {
		return err
	}
	if err := benchObs(*outdir); err != nil {
		return err
	}
	if err := benchChurn(*outdir); err != nil {
		return err
	}
	return benchMux(*outdir)
}
