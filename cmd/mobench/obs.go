// The obs subcommand: E15's observability-overhead audit. The same
// open-loop mesh workload runs untraced and traced (per-node collector
// + registry, the pipeline the fleet plane scrapes) and the throughput
// delta is the cost of turning the lights on. A fleet-traced run then
// scrapes live daemons over HTTP and validates the merged causal
// timeline — the attribution and skew numbers in the snapshot are
// backed by that validation, not trusted counters. Finally a traced
// run repeats with mutex profiling at full sampling and the pprof
// profile is parsed into the named top-contended-lock table. -json
// writes BENCH_obs.json and re-validates it, failing on missing rows,
// zero throughput, runaway overhead or an invalid fleet timeline.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"msgorder/internal/conformance"
	"msgorder/internal/fleetobs"
	"msgorder/internal/protocols/registry"
)

// defaultObsProtos is the E15 protocol pair: one tagged-channel and one
// tagged-causal protocol, the classes whose inhibition spans the
// attribution decomposes.
const defaultObsProtos = "fifo,causal-rst"

// obsOverheadRow compares untraced and traced mesh throughput for one
// protocol. The two arms are interleaved (untraced, traced, untraced,
// ...) after a discarded warmup run, and each arm reports its best of
// -runs attempts: interleaving keeps slow drifts in machine load from
// landing entirely on one arm, and best-of-n keeps scheduler noise out
// of the delta.
type obsOverheadRow struct {
	Protocol        string  `json:"protocol"`
	Msgs            int     `json:"msgs"`
	Runs            int     `json:"runs"`
	UntracedMsgsSec float64 `json:"untraced_msgs_per_sec"`
	TracedMsgsSec   float64 `json:"traced_msgs_per_sec"`
	// OverheadPct is the throughput lost to tracing, in percent
	// (negative values are measurement noise on a faster traced run).
	OverheadPct float64 `json:"overhead_pct"`
	TracedP50us int64   `json:"traced_p50_us"`
	TracedP99us int64   `json:"traced_p99_us"`
}

// obsLockRow is one named entry of the top-contended-lock table parsed
// from the runtime mutex profile.
type obsLockRow struct {
	Site    string `json:"site"`
	DelayUS int64  `json:"delay_us"`
	Count   int64  `json:"count"`
}

// obsBench is the BENCH_obs.json rows payload.
type obsBench struct {
	// Overhead is the traced-vs-untraced throughput table.
	Overhead []obsOverheadRow `json:"overhead"`
	// Fleet is the scraped, merged, causally validated fleet run.
	Fleet conformance.FleetTraceResult `json:"fleet"`
	// FleetKeyed repeats it on the sharded runtime with a keyed
	// workload, populating the skew report.
	FleetKeyed conformance.FleetTraceResult `json:"fleet_keyed"`
	// MutexFraction is the sampling rate the contention capture ran at.
	MutexFraction int `json:"mutex_fraction"`
	// Contention is the named top-contended-lock table.
	Contention []obsLockRow `json:"contention"`
}

// obsConfig shapes one E15 data collection.
type obsConfig struct {
	protos    []string
	load      conformance.LoadConfig
	runs      int
	fleetMsgs int
	keys      int
	mutexFrac int
}

// measureOverhead runs one protocol's overhead cell: a discarded
// warmup, then runs interleaved untraced/traced pairs, keeping the best
// throughput per arm. The first run after a process starts (or after
// another protocol's runs) is reliably slower — connection setup, page
// faults, branch warmup — so it is burned rather than measured.
func measureOverhead(p conformance.NetProtocol, cfg conformance.LoadConfig, runs int) (untraced, traced conformance.LoadResult, err error) {
	if _, err = conformance.RunLoadMesh(p, cfg); err != nil {
		return untraced, traced, fmt.Errorf("warmup: %w", err)
	}
	tcfg := cfg
	tcfg.Traced = true
	for i := 0; i < runs; i++ {
		u, uerr := conformance.RunLoadMesh(p, cfg)
		if uerr != nil {
			return untraced, traced, fmt.Errorf("untraced: %w", uerr)
		}
		if u.MsgsPerSec > untraced.MsgsPerSec {
			untraced = u
		}
		tr, terr := conformance.RunLoadMesh(p, tcfg)
		if terr != nil {
			return untraced, traced, fmt.Errorf("traced: %w", terr)
		}
		if tr.MsgsPerSec > traced.MsgsPerSec {
			traced = tr
		}
	}
	return untraced, traced, nil
}

// obsData collects the E15 payload: overhead rows per protocol, the
// validated fleet runs, and the contention table from a mutex-profiled
// traced run.
func obsData(cfg obsConfig) (obsBench, error) {
	var out obsBench
	protos := make([]conformance.NetProtocol, 0, len(cfg.protos))
	for _, name := range cfg.protos {
		e, ok := registry.ByName(name)
		if !ok {
			return out, fmt.Errorf("unknown protocol %q (see 'mobench protocols')", name)
		}
		protos = append(protos, conformance.NetProtocol{Name: e.Name, Maker: e.Maker, Colors: e.Colors})
	}

	for _, p := range protos {
		untraced, traced, err := measureOverhead(p, cfg.load, cfg.runs)
		if err != nil {
			return out, fmt.Errorf("obs overhead %s: %w", p.Name, err)
		}
		out.Overhead = append(out.Overhead, obsOverheadRow{
			Protocol:        p.Name,
			Msgs:            untraced.Msgs,
			Runs:            cfg.runs,
			UntracedMsgsSec: untraced.MsgsPerSec,
			TracedMsgsSec:   traced.MsgsPerSec,
			OverheadPct:     (1 - traced.MsgsPerSec/untraced.MsgsPerSec) * 100,
			TracedP50us:     traced.P50us,
			TracedP99us:     traced.P99us,
		})
	}

	// The fleet runs add live HTTP scraping on top of tracing and gate
	// on the merged timeline's causal validity.
	fcfg := conformance.FleetTraceConfig{
		Procs: cfg.load.Procs, Msgs: cfg.fleetMsgs,
		Seed: cfg.load.Seed, Timeout: cfg.load.Timeout,
	}
	var err error
	out.Fleet, err = conformance.RunFleetTraced(protos[len(protos)-1], fcfg)
	if err != nil {
		return out, fmt.Errorf("obs fleet: %w", err)
	}
	kcfg := fcfg
	kcfg.Keys = cfg.keys
	out.FleetKeyed, err = conformance.RunFleetTraced(protos[0], kcfg)
	if err != nil {
		return out, fmt.Errorf("obs fleet keyed: %w", err)
	}

	// Contention capture: a separate traced pass with the mutex
	// profiler at cfg.mutexFrac, kept out of the overhead measurements
	// above so sampling cost does not inflate the tracing delta.
	out.MutexFraction = cfg.mutexFrac
	prev := runtime.SetMutexProfileFraction(cfg.mutexFrac)
	tcfg := cfg.load
	tcfg.Traced = true
	_, lerr := conformance.RunLoadMesh(protos[len(protos)-1], tcfg)
	var buf bytes.Buffer
	perr := pprof.Lookup("mutex").WriteTo(&buf, 1)
	runtime.SetMutexProfileFraction(prev)
	if lerr != nil {
		return out, fmt.Errorf("obs contention run: %w", lerr)
	}
	if perr != nil {
		return out, fmt.Errorf("obs mutex profile: %w", perr)
	}
	sites, err := fleetobs.ParseContention(&buf)
	if err != nil {
		return out, fmt.Errorf("obs contention parse: %w", err)
	}
	for _, s := range fleetobs.TopContended(sites, 8) {
		out.Contention = append(out.Contention, obsLockRow{Site: s.Frame, DelayUS: s.DelayUS, Count: s.Count})
	}
	return out, nil
}

// validateBenchObs re-reads a written BENCH_obs.json and fails unless
// every overhead row shows nonzero throughput with bounded overhead,
// both fleet timelines validated causally, and the contention table
// names at least one lock site — the obs-fleet smoke gate's check.
func validateBenchObs(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("re-reading %s: %w", path, err)
	}
	var f struct {
		Experiment string   `json:"experiment"`
		Rows       obsBench `json:"rows"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		return fmt.Errorf("%s is not valid JSON: %w", path, err)
	}
	if f.Experiment == "" || len(f.Rows.Overhead) == 0 {
		return fmt.Errorf("%s has no overhead rows", path)
	}
	for _, r := range f.Rows.Overhead {
		if r.UntracedMsgsSec <= 0 || r.TracedMsgsSec <= 0 {
			return fmt.Errorf("%s: %s reports zero throughput", path, r.Protocol)
		}
		// The recorded expectation is ≤15%; the in-file gate allows
		// scheduler noise on loaded CI boxes without passing a real
		// regression.
		if r.OverheadPct > 50 {
			return fmt.Errorf("%s: %s tracing overhead %.1f%% (gate: 50%%)", path, r.Protocol, r.OverheadPct)
		}
	}
	for name, res := range map[string]conformance.FleetTraceResult{
		"fleet": f.Rows.Fleet, "fleet_keyed": f.Rows.FleetKeyed,
	} {
		if err := res.Check.Err(); err != nil {
			return fmt.Errorf("%s: %s timeline invalid: %w", path, name, err)
		}
		if res.Check.Receives == 0 {
			return fmt.Errorf("%s: %s timeline saw no cross-process traffic", path, name)
		}
	}
	if f.Rows.FleetKeyed.Skew.Deliveries == 0 {
		return fmt.Errorf("%s: keyed fleet run produced no skew report", path)
	}
	if len(f.Rows.Contention) == 0 {
		return fmt.Errorf("%s: contention table is empty (mutex fraction %d)", path, f.Rows.MutexFraction)
	}
	return nil
}

// obsCmd runs E15:
//
//	mobench obs            # print the overhead / attribution / lock tables
//	mobench obs -json      # write + re-validate BENCH_obs.json
func obsCmd(args []string) error {
	fs := flag.NewFlagSet("mobench obs", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "write the BENCH_obs.json snapshot instead of tables")
	outdir := fs.String("outdir", ".", "directory to write BENCH_obs.json into")
	msgs := fs.Int("msgs", 10000, "open-loop workload length per overhead run")
	runs := fs.Int("runs", 3, "interleaved untraced/traced pairs per protocol; best per arm wins")
	seed := fs.Int64("seed", 5, "workload seed")
	procs := fs.Int("procs", 3, "mesh size")
	protos := fs.String("protos", defaultObsProtos, "comma-separated protocol list")
	fleetMsgs := fs.Int("fleet-msgs", 200, "workload length for the scraped fleet runs")
	keys := fs.Int("keys", 8, "ordering domains for the keyed fleet run")
	mutexFrac := fs.Int("mutex-fraction", 1, "mutex profile sampling rate for the contention capture")
	timeout := fs.Duration("timeout", 60*time.Second, "drain deadline per run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := obsConfig{
		protos:    strings.Split(*protos, ","),
		load:      conformance.LoadConfig{Procs: *procs, Msgs: *msgs, Seed: *seed, Timeout: *timeout},
		runs:      *runs,
		fleetMsgs: *fleetMsgs,
		keys:      *keys,
		mutexFrac: *mutexFrac,
	}
	rows, err := obsData(cfg)
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := writeBench(*outdir, "BENCH_obs.json", "E15 observability-plane overhead and fleet timeline audit", rows); err != nil {
			return err
		}
		return validateBenchObs(filepath.Join(*outdir, "BENCH_obs.json"))
	}
	fmt.Println("== E15: observability-plane overhead — traced vs untraced mesh load ==")
	fmt.Printf("%-12s %14s %14s %9s %10s %10s\n",
		"protocol", "untraced m/s", "traced m/s", "overhead", "t.p50(µs)", "t.p99(µs)")
	for _, r := range rows.Overhead {
		fmt.Printf("%-12s %14.0f %14.0f %8.1f%% %10d %10d\n",
			r.Protocol, r.UntracedMsgsSec, r.TracedMsgsSec, r.OverheadPct, r.TracedP50us, r.TracedP99us)
	}
	for _, fr := range []conformance.FleetTraceResult{rows.Fleet, rows.FleetKeyed} {
		kind := "fleet"
		if fr.Skew.Deliveries > 0 {
			kind = "fleet keyed"
		}
		fmt.Printf("\n%s (%s, %d msgs, %d procs): %d events, check: ", kind, fr.Protocol, fr.Msgs, fr.Procs, fr.Events)
		if err := fr.Check.Err(); err != nil {
			fmt.Printf("INVALID (%v)\n", err)
		} else {
			fmt.Println("causally valid, zero orphans")
		}
		a := fr.Attribution
		fmt.Printf("  attribution over %d msgs: total p50/p99 %d/%d µs — inhibit %.1f%%, transport %.1f%%, queue %.1f%%\n",
			a.Msgs, a.Total.P50, a.Total.P99, a.Inhibit.Share*100, a.Transport.Share*100, a.Queue.Share*100)
		if fr.Skew.Deliveries > 0 {
			fmt.Printf("  skew: %d domains, max share %.1f%%\n", fr.Skew.Keys, fr.Skew.MaxShare*100)
		}
	}
	fmt.Printf("\ntop contended locks (mutex profile, fraction %d)\n", rows.MutexFraction)
	for _, c := range rows.Contention {
		fmt.Printf("  %-56s %12d µs %8d\n", c.Site, c.DelayUS, c.Count)
	}
	fmt.Println("expected shape: tracing overhead well under 15%; both fleet timelines")
	fmt.Println("causally valid with zero orphaned receives; a short lock table —")
	fmt.Println("batching keeps the node lock uncontended, so what remains is the")
	fmt.Println("mesh connection-writer locks.")
	return nil
}

// benchObs writes and re-validates the BENCH_obs.json snapshot for
// 'mobench bench' (shorter runs than the standalone subcommand's
// defaults, so the full snapshot regeneration stays quick).
func benchObs(outdir string) error {
	rows, err := obsData(obsConfig{
		protos:    strings.Split(defaultObsProtos, ","),
		load:      conformance.LoadConfig{Procs: 3, Msgs: 10000, Seed: 5},
		runs:      3,
		fleetMsgs: 150,
		keys:      8,
		mutexFrac: 1,
	})
	if err != nil {
		return err
	}
	if err := writeBench(outdir, "BENCH_obs.json", "E15 observability-plane overhead and fleet timeline audit", rows); err != nil {
		return err
	}
	return validateBenchObs(filepath.Join(outdir, "BENCH_obs.json"))
}
