// The crashes subcommand: E11's crash/recovery matrix — the protocol
// catalog swept across seeded crash-restart and crash-stop plans on the
// live harness, with durable-state recovery latency per cell.
package main

import (
	"flag"
	"fmt"
	"time"

	"msgorder/internal/catalog"
	"msgorder/internal/conformance"
	"msgorder/internal/crash"
	"msgorder/internal/event"
	"msgorder/internal/obs"
	"msgorder/internal/predicate"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/fifo"
	"msgorder/internal/protocols/flush"
	"msgorder/internal/protocols/kweaker"
	syncproto "msgorder/internal/protocols/sync"
	"msgorder/internal/protocols/tagless"
)

// crashPlans returns the named crash plans of the E11 matrix. P0 is the
// sync protocols' coordinator, so crashes target P1/P2 only: the matrix
// measures worker recovery, not coordinator fail-over.
func crashPlans() []struct {
	name string
	plan crash.Plan
} {
	restart := crash.RestartStagger([]event.ProcID{1, 2}, 15, 40, 5*time.Millisecond)
	restart.SnapshotEvery = 8
	replay := crash.RestartStagger([]event.ProcID{1}, 25, 0, 5*time.Millisecond)
	return []struct {
		name string
		plan crash.Plan
	}{
		{"restart-p1p2", restart},         // both workers crash once, checkpointed WAL
		{"restart-replay", replay},        // one crash, no checkpoints: full journal replay
		{"stop-p2", crash.StopOne(2, 25)}, // P2 dies forever mid-run
	}
}

// crashCell is one (protocol, crash plan) cell, summed over seeds.
type crashCell struct {
	Plan           string  `json:"plan"`
	Crashes        int     `json:"crashes"`
	Recoveries     int     `json:"recoveries"`
	Replayed       int     `json:"replayed_events"`
	Retransmits    int     `json:"retransmits"`
	Undelivered    int     `json:"undelivered"`
	Violations     int     `json:"violations"`
	RecoveryMeanUS float64 `json:"recovery_mean_us"`
	RecoveryMaxUS  int64   `json:"recovery_max_us"`
}

// crashesRow is one protocol's row of the crash matrix.
type crashesRow struct {
	Protocol string      `json:"protocol"`
	Spec     string      `json:"spec"`
	Cells    []crashCell `json:"cells"`
}

// crashesData sweeps the full protocol catalog across the crash plans.
// Each (protocol, plan) cell gets its own metrics registry so the
// recovery-latency histogram is per cell, not smeared across the matrix.
func crashesData() ([]crashesRow, error) {
	cases := []struct {
		name  string
		maker protocol.Maker
		spec  string
		pred  *predicate.Predicate
	}{
		{"tagless", tagless.Maker, "", nil},
		{"fifo", fifo.Maker, "fifo", nil},
		{"kweaker-1", kweaker.Maker(1), "kweaker-1-channel", catalog.KWeakerChannel(1)},
		{"flush", flush.Maker, "local-forward-flush", nil},
		{"causal-rst", causal.RSTMaker, "causal-b2", nil},
		{"causal-ses", causal.SESMaker, "causal-b2", nil},
		{"sync", syncproto.Maker, "sync-2", nil},
		{"sync-ra", syncproto.RAMaker, "sync-2", nil},
	}
	const seeds = 2
	var rows []crashesRow
	for _, c := range cases {
		cfg := conformance.Config{
			Maker:       c.maker,
			Procs:       3,
			InitialMsgs: 50,
		}
		if c.name == "flush" {
			cfg.Colors = []event.Color{
				event.ColorNone, event.ColorNone, event.ColorNone, event.ColorRed,
			}
		}
		pred := c.pred
		specName := "(liveness)"
		if c.spec != "" {
			specName = c.spec
			if pred == nil {
				e, ok := catalog.ByName(c.spec)
				if !ok {
					return nil, fmt.Errorf("%s: unknown spec %q", c.name, c.spec)
				}
				pred = e.Pred
			}
		}
		row := crashesRow{Protocol: c.name, Spec: specName}
		for _, p := range crashPlans() {
			reg := obs.NewRegistry()
			cells, err := conformance.CrashMatrix(cfg.WithMetrics(reg),
				[]crash.Plan{p.plan}, seeds, pred)
			if err != nil {
				return nil, fmt.Errorf("%s under %s: %w", c.name, p.name, err)
			}
			cell := cells[0]
			out := crashCell{
				Plan:        p.name,
				Crashes:     cell.Stats.Crashes,
				Recoveries:  cell.Stats.Recoveries,
				Replayed:    cell.Stats.ReplayedEvents,
				Retransmits: cell.Stats.Retransmits,
				Undelivered: cell.Undelivered,
				Violations:  cell.Violations,
			}
			if h, ok := reg.Snapshot().Histograms["crash.recovery.latency.us"]; ok {
				out.RecoveryMeanUS = h.Mean()
				out.RecoveryMaxUS = h.Max
			}
			row.Cells = append(row.Cells, out)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// crashesCmd runs the E11 crash/recovery matrix:
//
//	mobench crashes            # print the table
//	mobench crashes -json      # write BENCH_crashes.json into -outdir
func crashesCmd(args []string) error {
	fs := flag.NewFlagSet("mobench crashes", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "write the BENCH_crashes.json snapshot instead of a table")
	outdir := fs.String("outdir", ".", "directory to write BENCH_crashes.json into")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := crashesData()
	if err != nil {
		return err
	}
	if *jsonOut {
		return writeBench(*outdir, "BENCH_crashes.json", "E11 crash/recovery matrix", rows)
	}
	fmt.Println("== E11: crash/recovery matrix — live harness with durable protocol state ==")
	fmt.Println("cell: crashes/recoveries, replayed WAL entries, mean recovery latency; 'lost' =")
	fmt.Println("undelivered messages (legal only under crash-stop), 'viol' flags spec violations")
	fmt.Printf("%-12s", "protocol")
	plans := crashPlans()
	for _, p := range plans {
		fmt.Printf(" %-26s", p.name)
	}
	fmt.Println(" spec")
	for _, row := range rows {
		fmt.Printf("%-12s", row.Protocol)
		for _, cell := range row.Cells {
			s := fmt.Sprintf("%d/%d r%d %s", cell.Crashes, cell.Recoveries, cell.Replayed,
				(time.Duration(cell.RecoveryMeanUS) * time.Microsecond).Round(10*time.Microsecond))
			if cell.Undelivered > 0 {
				s += fmt.Sprintf(" lost:%d", cell.Undelivered)
			}
			if cell.Violations > 0 {
				s += fmt.Sprintf(" viol:%d", cell.Violations)
			}
			fmt.Printf(" %-26s", s)
		}
		fmt.Printf(" %s\n", row.Spec)
	}
	fmt.Println("expected shape: restart cells deliver everything (no 'lost') and stay")
	fmt.Println("violation-free — recovery replays the journal back to the pre-crash state.")
	fmt.Println("stop cells lose the dead process's mail for the asynchronous protocols; the")
	fmt.Println("logically synchronous ones stall their global order behind the dead")
	fmt.Println("participant (fail-over is out of scope), losing nearly everything. Every")
	fmt.Println("delivered prefix still satisfies its specification.")
	return nil
}
