package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"msgorder/internal/obs"
)

// TestMain doubles as the real binary when re-exec'd with
// MOBENCH_AS_BINARY=1, so the exit-code tests observe the genuine
// process-level contract rather than run()'s error value.
func TestMain(m *testing.M) {
	if os.Getenv("MOBENCH_AS_BINARY") == "1" {
		os.Exit(mainExit(os.Args[1:]))
	}
	os.Exit(m.Run())
}

// The experiments print to stdout; these smoke tests assert they run to
// completion without error (their content is asserted by the library
// test suites they are built on).

func TestTable1(t *testing.T) {
	if err := table1(); err != nil {
		t.Fatal(err)
	}
}

func TestDiscussion(t *testing.T) {
	if err := discussion(); err != nil {
		t.Fatal(err)
	}
}

func TestInhibitory(t *testing.T) {
	if err := inhibitory(); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesis(t *testing.T) {
	if err := synthesis(); err != nil {
		t.Fatal(err)
	}
}

func TestLemma3(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded-universe sweep")
	}
	if err := lemma3(); err != nil {
		t.Fatal(err)
	}
}

func TestExploreExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("schedule enumeration")
	}
	if err := explore(false); err != nil {
		t.Fatal(err)
	}
}

func TestFaultsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("live lossy-network sweep")
	}
	if err := faults(false); err != nil {
		t.Fatal(err)
	}
}

// TestCrashesCmd drives the E11 matrix end to end: the table must
// print, and -json must write a parseable BENCH_crashes.json with a
// restart cell that actually recovered.
func TestCrashesCmd(t *testing.T) {
	if testing.Short() {
		t.Skip("live crash sweep")
	}
	if err := crashesCmd(nil); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := crashesCmd([]string{"-json", "-outdir", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_crashes.json"))
	if err != nil {
		t.Fatal(err)
	}
	var bf struct {
		Experiment string       `json:"experiment"`
		Rows       []crashesRow `json:"rows"`
	}
	if err := json.Unmarshal(data, &bf); err != nil {
		t.Fatal(err)
	}
	if len(bf.Rows) == 0 {
		t.Fatal("no rows in BENCH_crashes.json")
	}
	for _, row := range bf.Rows {
		for _, cell := range row.Cells {
			if cell.Violations > 0 {
				t.Fatalf("%s under %s: %d violations", row.Protocol, cell.Plan, cell.Violations)
			}
			if cell.Plan == "restart-p1p2" {
				if cell.Recoveries != cell.Crashes || cell.Crashes == 0 {
					t.Fatalf("%s: crashes/recoveries = %d/%d", row.Protocol, cell.Crashes, cell.Recoveries)
				}
				if cell.Undelivered != 0 {
					t.Fatalf("%s restart cell lost %d messages", row.Protocol, cell.Undelivered)
				}
				if cell.RecoveryMaxUS == 0 {
					t.Fatalf("%s: no recovery latency recorded", row.Protocol)
				}
			}
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"nope"}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

// TestExitCodes pins the process-level contract: failing subcommands
// exit non-zero, succeeding ones exit zero. Each case re-execs the
// test binary as mobench itself.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	cases := []struct {
		name     string
		args     []string
		wantFail bool
	}{
		{"unknown-experiment", []string{"nope"}, true},
		{"bad-trace-format", []string{"trace", "-format", "xml"}, true},
		{"validate-wrong-format", []string{"trace", "-format", "ndjson", "-validate",
			"-o", filepath.Join(t.TempDir(), "t.ndjson")}, true},
		{"validate-on-stdout", []string{"trace", "-validate", "-o", "-"}, true},
		{"bad-flag", []string{"-nonsense"}, true},
		{"table1-succeeds", []string{"table1"}, false},
		{"trace-validate-succeeds", []string{"trace", "-proto", "causal-rst", "-validate",
			"-o", filepath.Join(t.TempDir(), "t.json")}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(os.Args[0], tc.args...)
			cmd.Env = append(os.Environ(), "MOBENCH_AS_BINARY=1")
			err := cmd.Run()
			if tc.wantFail && err == nil {
				t.Fatalf("mobench %v exited 0, want non-zero", tc.args)
			}
			if !tc.wantFail && err != nil {
				t.Fatalf("mobench %v exited non-zero: %v", tc.args, err)
			}
		})
	}
}

// TestTraceCmd drives the trace subcommand end to end on both harness
// backends and re-validates the emitted Chrome trace.
func TestTraceCmd(t *testing.T) {
	for _, lossy := range []bool{false, true} {
		name := "deterministic"
		args := []string{"-proto", "causal-rst", "-validate"}
		if lossy {
			name = "lossy"
			args = append(args, "-lossy")
		}
		t.Run(name, func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "trace.json")
			if err := traceCmd(append(args, "-o", out)); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if err := obs.ValidateChromeTrace(data); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTraceCmdNDJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.ndjson")
	if err := traceCmd([]string{"-format", "ndjson", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("ndjson trace is empty")
	}
}

func TestTraceCmdRejectsBadFlags(t *testing.T) {
	if err := traceCmd([]string{"-format", "xml"}); err == nil {
		t.Fatal("bad format must fail")
	}
	if err := traceCmd([]string{"-proto", "nope", "-o", "-"}); err == nil {
		t.Fatal("unknown protocol must fail")
	}
}

// TestBenchCmd writes the BENCH_*.json snapshots into a temp dir and
// checks they parse.
func TestBenchCmd(t *testing.T) {
	if testing.Short() {
		t.Skip("schedule enumeration + lossy sweep")
	}
	dir := t.TempDir()
	if err := benchCmd([]string{"-outdir", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"BENCH_explore.json", "BENCH_faults.json", "BENCH_crashes.json",
		"BENCH_net.json", "BENCH_shard.json", "BENCH_churn.json",
		"BENCH_mux.json",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		var bf benchFile
		if err := json.Unmarshal(data, &bf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bf.Experiment == "" || bf.Rows == nil {
			t.Fatalf("%s: incomplete envelope %+v", name, bf)
		}
	}
}
