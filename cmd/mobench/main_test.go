package main

import "testing"

// The experiments print to stdout; these smoke tests assert they run to
// completion without error (their content is asserted by the library
// test suites they are built on).

func TestTable1(t *testing.T) {
	if err := table1(); err != nil {
		t.Fatal(err)
	}
}

func TestDiscussion(t *testing.T) {
	if err := discussion(); err != nil {
		t.Fatal(err)
	}
}

func TestInhibitory(t *testing.T) {
	if err := inhibitory(); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesis(t *testing.T) {
	if err := synthesis(); err != nil {
		t.Fatal(err)
	}
}

func TestLemma3(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded-universe sweep")
	}
	if err := lemma3(); err != nil {
		t.Fatal(err)
	}
}

func TestExploreExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("schedule enumeration")
	}
	if err := explore(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("live lossy-network sweep")
	}
	if err := faults(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"nope"}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}
