// The load subcommand: E13's sustained open-loop throughput runs — the
// whole seeded workload invoked up front, no lockstep barrier — on the
// in-memory sim and on a 3-process loopback TCP mesh per protocol. The
// mesh side exercises the full high-throughput path (batched framing,
// pooled codec buffers, pipelined acks, optional group-commit WAL) and
// every run validates its user view before reporting a number. -json
// writes BENCH_load.json, then re-reads and re-validates the file so a
// truncated or zero-throughput snapshot is an error, not an artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"msgorder/internal/conformance"
	"msgorder/internal/protocols/registry"
)

// defaultLoadProtos is the default load set: one protocol per
// asynchronous class (tagless / tagged-channel / tagged-causal). The
// sync protocols serialize every message through a coordinator round
// trip, so open-loop load degenerates to lockstep for them; they can
// still be requested explicitly via -protos.
const defaultLoadProtos = "tagless,fifo,causal-rst"

// loadData runs the sim and mesh load rows for each named protocol.
func loadData(protos []string, cfg conformance.LoadConfig, wal bool) ([]conformance.LoadResult, error) {
	var rows []conformance.LoadResult
	for _, name := range protos {
		e, ok := registry.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown protocol %q (see 'mobench protocols')", name)
		}
		p := conformance.NetProtocol{Name: e.Name, Maker: e.Maker, Colors: e.Colors}
		simRes, err := conformance.RunLoadSim(p, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, simRes)
		mcfg := cfg
		if wal {
			dir, err := os.MkdirTemp("", "mobench-load-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			mcfg.WALDir = dir
			mcfg.GroupCommit = true
		}
		meshRes, err := conformance.RunLoadMesh(p, mcfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, meshRes)
	}
	return rows, nil
}

// netBaseline reads BENCH_net.json from dir and returns the clean-cell
// mesh throughput per protocol (the lockstep baseline the load path is
// measured against), or nil if the snapshot is absent or unreadable.
func netBaseline(dir string) map[string]float64 {
	b, err := os.ReadFile(filepath.Join(dir, "BENCH_net.json"))
	if err != nil {
		return nil
	}
	var f struct {
		Rows []struct {
			Protocol string `json:"protocol"`
			Cells    []struct {
				Cell       string  `json:"cell"`
				MsgsPerSec float64 `json:"msgs_per_sec"`
			} `json:"cells"`
		} `json:"rows"`
	}
	if json.Unmarshal(b, &f) != nil {
		return nil
	}
	out := map[string]float64{}
	for _, r := range f.Rows {
		for _, c := range r.Cells {
			if c.Cell == "clean" && c.MsgsPerSec > 0 {
				out[r.Protocol] = c.MsgsPerSec
			}
		}
	}
	return out
}

// validateBenchLoad re-reads a written BENCH_load.json and fails unless
// it parses and every row shows nonzero throughput — the load-smoke
// gate's whole check is this function's exit code.
func validateBenchLoad(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("re-reading %s: %w", path, err)
	}
	var f struct {
		Experiment string                   `json:"experiment"`
		Rows       []conformance.LoadResult `json:"rows"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		return fmt.Errorf("%s is not valid JSON: %w", path, err)
	}
	if f.Experiment == "" || len(f.Rows) == 0 {
		return fmt.Errorf("%s has no rows", path)
	}
	for _, r := range f.Rows {
		if r.MsgsPerSec <= 0 || r.Msgs <= 0 {
			return fmt.Errorf("%s: %s/%s reports zero throughput", path, r.Runtime, r.Protocol)
		}
	}
	return nil
}

// loadCmd runs E13:
//
//	mobench load                 # print the sustained-throughput table
//	mobench load -json           # write + re-validate BENCH_load.json
//	mobench load -wal            # mesh rows journal to file-backed WALs
//	                             # with group commit
func loadCmd(args []string) error {
	fs := flag.NewFlagSet("mobench load", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "write the BENCH_load.json snapshot instead of a table")
	outdir := fs.String("outdir", ".", "directory to write BENCH_load.json into (and find the BENCH_net.json baseline)")
	msgs := fs.Int("msgs", 4000, "open-loop workload length per run")
	seed := fs.Int64("seed", 5, "workload seed")
	procs := fs.Int("procs", 3, "mesh size")
	protos := fs.String("protos", defaultLoadProtos, "comma-separated protocol list")
	wal := fs.Bool("wal", false, "give mesh nodes file-backed WALs with group commit")
	timeout := fs.Duration("timeout", 60*time.Second, "drain deadline per run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := conformance.LoadConfig{Procs: *procs, Msgs: *msgs, Seed: *seed, Timeout: *timeout}
	rows, err := loadData(strings.Split(*protos, ","), cfg, *wal)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if r.MsgsPerSec <= 0 {
			return fmt.Errorf("%s/%s reports zero throughput", r.Runtime, r.Protocol)
		}
	}
	if *jsonOut {
		if err := writeBench(*outdir, "BENCH_load.json", "E13 sustained open-loop load", rows); err != nil {
			return err
		}
		return validateBenchLoad(filepath.Join(*outdir, "BENCH_load.json"))
	}
	base := netBaseline(*outdir)
	fmt.Println("== E13: sustained open-loop load — sim and 3-process loopback TCP mesh ==")
	fmt.Printf("%d messages per run, invoked open-loop; latency is invoke→deliver\n", *msgs)
	fmt.Printf("%-12s %-8s %10s %9s %9s %9s %7s %12s %8s\n",
		"protocol", "runtime", "msgs/sec", "p50(µs)", "p99(µs)", "max(µs)", "batch", "retransmits", "vs E12")
	for _, r := range rows {
		batch, speedup := "-", "-"
		if r.Runtime == "mesh" {
			batch = fmt.Sprintf("%.1f", r.BatchFactor)
			if b := base[r.Protocol]; b > 0 {
				speedup = fmt.Sprintf("%.1fx", r.MsgsPerSec/b)
			}
		}
		fmt.Printf("%-12s %-8s %10.0f %9d %9d %9d %7s %12d %8s\n",
			r.Protocol, r.Runtime, r.MsgsPerSec, r.P50us, r.P99us, r.MaxUs,
			batch, r.Retransmits, speedup)
		if r.WALAppends > 0 {
			fmt.Printf("%-12s %-8s WAL: %d appends in %d flushes (%.0f entries/flush)\n",
				"", "", r.WALAppends, r.WALFlushes,
				float64(r.WALAppends)/float64(max(r.WALFlushes, 1)))
		}
	}
	fmt.Println("expected shape: mesh throughput within an order of magnitude of the sim and")
	fmt.Println("≥10x the E12 lockstep baseline (vs E12 column); batch factor > 1 shows frame")
	fmt.Println("coalescing working; pipelined acks keep retransmits near zero on loopback.")
	return nil
}
