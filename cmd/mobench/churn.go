// The churn subcommand: E16's membership-churn matrix — every catalog
// protocol plus the live §5 handoff protocol swept across membership
// operations {join, leave, evict, handoff} under topology-shaped
// network environments {clean, geo-lossy, asym-partition,
// crash-restart} on loopback TCP meshes with per-node WALs. Each cell
// validates the surviving members' user view byte-for-byte against the
// in-memory sim reference and, where the protocol carries one, against
// its forbidden-predicate specification. -json writes
// BENCH_churn.json, then re-reads and re-validates the file so a
// truncated or failing snapshot is an error, not an artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"msgorder/internal/conformance"
	"msgorder/internal/protocols/registry"
)

// churnProtoList resolves a comma-separated protocol list ("" = the
// full catalog plus handoff) into churn-matrix inputs with predicates.
func churnProtoList(list string) ([]conformance.ChurnProtocol, error) {
	var names []string
	if list == "" {
		for _, e := range registry.Catalog() {
			names = append(names, e.Name)
		}
		names = append(names, "handoff")
	} else {
		names = strings.Split(list, ",")
	}
	var out []conformance.ChurnProtocol
	for _, name := range names {
		e, ok := registry.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown protocol %q (see 'mobench protocols')", name)
		}
		out = append(out, conformance.ChurnProtocol{
			Name: e.Name, Maker: e.Maker, Colors: e.Colors, Pred: e.Pred(),
		})
	}
	return out, nil
}

// churnData runs the churn matrix in a scratch WAL directory and
// returns the cells.
func churnData(protos []conformance.ChurnProtocol, cfg conformance.ChurnConfig) ([]conformance.ChurnCell, error) {
	dir, err := os.MkdirTemp("", "mobench-churn-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cfg.WALDir = dir
	return conformance.ChurnMatrix(cfg, protos)
}

// churnEpochWant is the expected final membership epoch per operation:
// join is a leave plus a join, leave and evict are one view change,
// and handoff migrates the same logical member with no view change.
func churnEpochWant(op string) uint64 {
	switch op {
	case "join":
		return 2
	case "leave", "evict":
		return 1
	default:
		return 0
	}
}

// churnCellBad returns a non-empty reason when a cell fails its
// acceptance criteria; both the live run and the snapshot re-read
// validate through it.
func churnCellBad(c conformance.ChurnCell) string {
	switch {
	case !c.Match:
		return "surviving views diverge from the sim reference"
	case c.SpecViolation:
		return "mesh view violates the protocol's specification"
	case c.Epoch != churnEpochWant(c.Op):
		return fmt.Sprintf("epoch %d, want %d", c.Epoch, churnEpochWant(c.Op))
	case c.Op == "evict" && len(c.Evicted) != 1:
		return fmt.Sprintf("evicted %v, want exactly the churned process", c.Evicted)
	case c.Msgs <= 0:
		return "validated view covers no messages"
	}
	return ""
}

// validateBenchChurn re-reads a written BENCH_churn.json and fails
// unless it parses and every cell passes churnCellBad — the
// churn-smoke gate's whole check is this function's exit code.
func validateBenchChurn(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("re-reading %s: %w", path, err)
	}
	var f struct {
		Experiment string                  `json:"experiment"`
		Rows       []conformance.ChurnCell `json:"rows"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		return fmt.Errorf("%s is not valid JSON: %w", path, err)
	}
	if f.Experiment == "" || len(f.Rows) == 0 {
		return fmt.Errorf("%s has no rows", path)
	}
	for _, c := range f.Rows {
		if bad := churnCellBad(c); bad != "" {
			return fmt.Errorf("%s: %s/%s/%s: %s", path, c.Protocol, c.Op, c.Env, bad)
		}
	}
	return nil
}

// benchChurn writes and re-validates the BENCH_churn.json snapshot for
// 'mobench bench' (the full matrix at the default workload length).
func benchChurn(outdir string) error {
	protos, err := churnProtoList("")
	if err != nil {
		return err
	}
	cells, err := churnData(protos, conformance.ChurnConfig{Seed: 3})
	if err != nil {
		return err
	}
	if err := writeBench(outdir, "BENCH_churn.json", "E16 membership churn matrix", cells); err != nil {
		return err
	}
	return validateBenchChurn(filepath.Join(outdir, "BENCH_churn.json"))
}

// churnCmd runs E16:
//
//	mobench churn          # print the full churn matrix table
//	mobench churn -json    # write + re-validate BENCH_churn.json
//	mobench churn -smoke   # fifo × {join,evict} × clean (the CI gate)
func churnCmd(args []string) error {
	fs := flag.NewFlagSet("mobench churn", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "write the BENCH_churn.json snapshot instead of a table")
	outdir := fs.String("outdir", ".", "directory to write BENCH_churn.json into")
	msgs := fs.Int("msgs", 12, "lockstep workload length per cell")
	procs := fs.Int("procs", 3, "mesh size per cell")
	seed := fs.Int64("seed", 3, "workload seed")
	protos := fs.String("protos", "", "comma-separated protocol list (default: catalog + handoff)")
	ops := fs.String("ops", "", "comma-separated op sub-matrix (default: all)")
	envs := fs.String("envs", "", "comma-separated env sub-matrix (default: all)")
	smoke := fs.Bool("smoke", false, "run the fast gate: fifo x {join,evict} x clean")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := conformance.ChurnConfig{Procs: *procs, Msgs: *msgs, Seed: *seed}
	list := *protos
	if *ops != "" {
		cfg.Ops = strings.Split(*ops, ",")
	}
	if *envs != "" {
		cfg.Envs = strings.Split(*envs, ",")
	}
	if *smoke {
		list = "fifo"
		cfg.Ops = []string{"join", "evict"}
		cfg.Envs = []string{"clean"}
	}
	plist, err := churnProtoList(list)
	if err != nil {
		return err
	}
	cells, err := churnData(plist, cfg)
	if err != nil {
		return err
	}
	for _, c := range cells {
		if bad := churnCellBad(c); bad != "" {
			return fmt.Errorf("%s/%s/%s: %s", c.Protocol, c.Op, c.Env, bad)
		}
	}
	if *jsonOut {
		if err := writeBench(*outdir, "BENCH_churn.json", "E16 membership churn matrix", cells); err != nil {
			return err
		}
		return validateBenchChurn(filepath.Join(*outdir, "BENCH_churn.json"))
	}
	fmt.Println("== E16: membership churn matrix — ops x environments, surviving views vs sim ==")
	fmt.Printf("%-12s %-8s %-15s %6s %6s %6s %8s %10s\n",
		"protocol", "op", "env", "match", "spec", "epoch", "msgs", "mesh(ms)")
	for _, c := range cells {
		spec := "ok"
		if c.SpecViolation {
			spec = "VIOL"
		}
		fmt.Printf("%-12s %-8s %-15s %6t %6s %6d %8d %10.1f\n",
			c.Protocol, c.Op, c.Env, c.Match, spec, c.Epoch, c.Msgs,
			float64(c.MeshElapsed.Microseconds())/1000)
	}
	fmt.Println("expected shape: every cell matches — joiners splice byte-identically after")
	fmt.Println("state transfer, evictions name exactly the silent process, and handoff (§5)")
	fmt.Println("migrates a member with no view change even under lossy or asymmetric links.")
	return nil
}
