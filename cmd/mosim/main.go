// Command mosim executes a message-ordering protocol over the
// deterministic simulator under a randomized workload, verifies the
// recorded run against a specification, and reports overhead statistics.
//
// Usage:
//
//	mosim -protocol causal-rst -procs 4 -msgs 20 -seed 7 -spec causal-b2
//	mosim -protocol tagless -spec fifo -hunt 500   # search for a violating seed
//	mosim -protocol sync -diagram                  # print the run diagram
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"msgorder/internal/catalog"
	"msgorder/internal/check"
	"msgorder/internal/conformance"
	"msgorder/internal/event"
	"msgorder/internal/predicate"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/fifo"
	"msgorder/internal/protocols/flush"
	"msgorder/internal/protocols/kweaker"
	syncproto "msgorder/internal/protocols/sync"
	"msgorder/internal/protocols/tagless"
	"msgorder/internal/synth"
	"msgorder/internal/trace"
)

func makers() map[string]protocol.Maker {
	return map[string]protocol.Maker{
		"tagless":    tagless.Maker,
		"fifo":       fifo.Maker,
		"causal-rst": causal.RSTMaker,
		"causal-ses": causal.SESMaker,
		"causal-bss": causal.BSSMaker,
		"sync":       syncproto.Maker,
		"sync-ra":    syncproto.RAMaker,
		"flush":      flush.Maker,
		"kweaker-1":  kweaker.Maker(1),
		"kweaker-2":  kweaker.Maker(2),
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mosim:", err)
		os.Exit(1)
	}
}

// specArg resolves a catalog entry name or predicate text.
func specArg(s string) (*predicate.Predicate, error) {
	if e, ok := catalog.ByName(s); ok {
		return e.Pred, nil
	}
	p, err := predicate.Parse(s)
	if err != nil {
		return nil, fmt.Errorf("%q is neither a catalog name nor a predicate: %w", s, err)
	}
	return p, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("mosim", flag.ContinueOnError)
	var (
		protoName = fs.String("protocol", "causal-rst", "protocol to run (see -listprotocols)")
		listProto = fs.Bool("listprotocols", false, "list protocols and exit")
		procs     = fs.Int("procs", 3, "number of processes")
		msgs      = fs.Int("msgs", 12, "initial messages")
		chain     = fs.Int("chain", 8, "budget of delivery-triggered follow-up messages")
		seed      = fs.Int64("seed", 1, "workload and network seed")
		specName  = fs.String("spec", "", "catalog entry or predicate text to check the run against")
		hunt      = fs.Int("hunt", 0, "search this many seeds for a violation of -spec")
		diagram   = fs.Bool("diagram", false, "print the user-view time diagram")
		jsonOut   = fs.Bool("json", false, "print the run as JSON")
		colors    = fs.Bool("colored", false, "color some messages red (for flush/handoff specs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listProto {
		names := make([]string, 0)
		for name := range makers() {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return nil
	}

	var maker protocol.Maker
	if rest, found := strings.CutPrefix(*protoName, "synth:"); found {
		// Generate a protocol from a catalog entry or predicate text.
		p, err := specArg(rest)
		if err != nil {
			return err
		}
		m, plan, err := synth.Generate(p)
		if err != nil {
			return err
		}
		fmt.Printf("generated protocol: strategy %s (%s)\n", plan.Strategy, strings.Join(plan.Notes, "; "))
		maker = m
	} else {
		m, ok := makers()[*protoName]
		if !ok {
			return fmt.Errorf("unknown protocol %q (try -listprotocols)", *protoName)
		}
		maker = m
	}

	cfg := conformance.Config{
		Maker:       maker,
		Procs:       *procs,
		InitialMsgs: *msgs,
		ChainBudget: *chain,
		Seed:        *seed,
	}
	if *colors {
		cfg.Colors = []event.Color{
			event.ColorNone, event.ColorNone, event.ColorNone, event.ColorRed,
		}
	}

	var spec *predicate.Predicate
	if *specName != "" {
		var err error
		spec, err = specArg(*specName)
		if err != nil {
			return err
		}
	}

	if *hunt > 0 {
		if spec == nil {
			return fmt.Errorf("-hunt requires -spec")
		}
		v, found, err := conformance.FindsViolation(cfg, *hunt, spec)
		if err != nil {
			return err
		}
		if !found {
			fmt.Printf("no violation of the specification in %d seeds\n", *hunt)
			return nil
		}
		fmt.Printf("violation found at seed %d: %s\n", v.Seed, v.Match.String(spec))
		fmt.Print(trace.UserDiagram(v.View))
		return nil
	}

	res, err := conformance.Run(cfg)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Printf("protocol: %s  procs: %d  seed: %d\n", *protoName, *procs, *seed)
	fmt.Printf("user messages: %d  deliveries: %d  steps: %d  simulated time: %d\n",
		st.UserMessages, st.Deliveries, res.Steps, res.EndTime)
	fmt.Printf("overhead: %.1f tag bytes/msg, %.2f control msgs/msg (%d control, %d payload bytes)\n",
		st.TagBytesPerUser(), st.ControlPerUser(), st.ControlMessages, st.ControlBytes)
	fmt.Printf("limit sets: async=%v co=%v sync=%v\n",
		res.View.InAsync(), res.View.InCO(), res.View.InSync())

	if spec != nil {
		if m, bad := check.FindViolation(res.View, spec); bad {
			fmt.Printf("specification VIOLATED: %s\n", m.String(spec))
		} else {
			fmt.Println("specification satisfied")
		}
	}
	if *diagram {
		fmt.Print(trace.UserDiagram(res.View))
	}
	if *jsonOut {
		data, err := trace.EncodeUserView(res.View)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	}
	return nil
}
