package main

import "testing"

func TestBasicRun(t *testing.T) {
	if err := run([]string{"-protocol", "causal-rst", "-procs", "3", "-msgs", "8",
		"-spec", "causal-b2", "-diagram", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestHunt(t *testing.T) {
	if err := run([]string{"-protocol", "tagless", "-spec", "fifo", "-hunt", "100"}); err != nil {
		t.Fatal(err)
	}
}

func TestHuntNoViolation(t *testing.T) {
	if err := run([]string{"-protocol", "fifo", "-spec", "fifo", "-hunt", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestListProtocols(t *testing.T) {
	if err := run([]string{"-listprotocols"}); err != nil {
		t.Fatal(err)
	}
}

func TestSynthProtocol(t *testing.T) {
	if err := run([]string{"-protocol", "synth:fifo", "-spec", "fifo", "-msgs", "6"}); err != nil {
		t.Fatal(err)
	}
}

func TestColoredWorkload(t *testing.T) {
	if err := run([]string{"-protocol", "flush", "-colored", "-spec", "local-forward-flush"}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecAsPredicateText(t *testing.T) {
	if err := run([]string{"-protocol", "sync", "-spec", "x1, x2 : x1.s -> x2.r && x2.s -> x1.r"}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-protocol", "nope"},
		{"-protocol", "synth:sync-2"}, // needs control messages
		{"-protocol", "synth:not a pred"},
		{"-spec", "not a pred ->"},
		{"-hunt", "5"}, // hunt without spec
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
