// Command mod hosts one process of a message-ordering protocol
// instance over real TCP. Each mod process joins a peer mesh
// (length-prefixed frames, process-ID + fingerprint handshake), runs
// one protocol instance with the reliable retransmission sublayer and
// WAL-backed crash recovery underneath, and serves client invokes over
// a local NDJSON socket. Given a forbidden-predicate specification it
// runs the paper's classifier and picks the minimal protocol class
// witness automatically; -proto forces a specific catalog protocol.
// -sharded wraps the chosen protocol so each ordering key gets its own
// lazily created instance — millions of independent ordering domains
// per daemon, with the handshake fingerprint marking the mesh sharded
// so mixed sharded/unsharded fleets refuse to form.
//
// -mux runs the daemon multi-tenant: many logical channels over the
// same one-connection-per-peer-pair mesh, each with its own
// specification, classifier verdict, and minimal protocol witness.
// -channels seeds the channel table at boot ("name=spec" pairs,
// comma-separated; a bare name means no specification, i.e. the
// tagless witness); further channels open and close at runtime over
// the client socket. Specification expressions containing commas must
// be opened over the client socket instead. -mux excludes -sharded,
// -proto, and -spec: guarantee levels are per channel, not per daemon.
//
// Usage (a 2-process mesh on one machine):
//
//	mod -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001 -proto causal-rst &
//	mod -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001 -proto causal-rst &
//
// Every peer must be started with the same -peers list and the same
// -proto/-spec pair: the mesh handshake fingerprints the protocol and
// specification and refuses mismatched peers. On startup the daemon
// prints a single machine-readable line —
//
//	mod ready id=0 proto=causal-rst mesh=... client=... http=...
//
// — which drivers parse to learn the bound client socket. -http serves
// the fleetobs observability surface: /metrics (JSON counter/histogram
// snapshot; Prometheus text with ?format=prom), /trace (NDJSON causal
// trace export with ?since= incremental cursor), /healthz, and
// /debug/pprof. With -mutex-fraction/-block-rate set, /metrics also
// carries a contention summary — the top contended locks by cumulative
// delay — refreshed on every scrape.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"msgorder/internal/chanmux"
	"msgorder/internal/crash"
	"msgorder/internal/event"
	"msgorder/internal/fleetobs"
	"msgorder/internal/modrpc"
	"msgorder/internal/netmesh"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/registry"
	"msgorder/internal/shard"
	"msgorder/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mod:", err)
		os.Exit(1)
	}
}

// selectProtocol resolves the -proto/-spec pair to a maker and the
// fingerprint labels all peers must agree on. The spec→witness walk
// (parse, classify, minimal-witness pick) lives in the registry so the
// multiplexing daemon resolves per-channel specs identically.
func selectProtocol(proto, spec string, out io.Writer) (registry.Entry, error) {
	var required = -1
	if spec != "" {
		witness, class, err := registry.ForSpec(spec)
		if err != nil && class == 0 {
			return registry.Entry{}, fmt.Errorf("-spec: %w", err)
		}
		fmt.Fprintf(out, "mod spec class=%s\n", class)
		if err != nil {
			return registry.Entry{}, err
		}
		if required, err = registry.RequiredRank(class); err != nil {
			return registry.Entry{}, err
		}
		if proto == "" {
			return witness, nil
		}
	}
	if proto == "" {
		return registry.Entry{}, fmt.Errorf("one of -proto or -spec is required (protocols: %s)",
			strings.Join(registry.Names(), ", "))
	}
	e, ok := registry.ByName(proto)
	if !ok {
		return registry.Entry{}, fmt.Errorf("unknown protocol %q (protocols: %s)",
			proto, strings.Join(registry.Names(), ", "))
	}
	if required >= 0 {
		d, ok := e.Maker().(protocol.Describer)
		if ok && int(d.Describe().Class) < required {
			return registry.Entry{}, fmt.Errorf(
				"-proto %s is class %s, weaker than the specification requires", proto, d.Describe().Class)
		}
	}
	return e, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mod", flag.ContinueOnError)
	var (
		id         = fs.Int("id", -1, "this process's ID (index into -peers)")
		peers      = fs.String("peers", "", "comma-separated mesh addresses, one per process, indexed by ID")
		proto      = fs.String("proto", "", "catalog protocol to run (overrides the classifier's witness)")
		spec       = fs.String("spec", "", "forbidden-predicate specification (catalog name or expression); classified to pick the minimal protocol class")
		clientAddr = fs.String("client", "127.0.0.1:0", "client NDJSON socket address")
		httpAddr   = fs.String("http", "", "observability HTTP address serving /metrics and /trace (empty = disabled)")
		wal        = fs.String("wal", "", "write-ahead log path for crash recovery (empty = in-memory journal)")
		snapEvery  = fs.Int("snapshot-every", 64, "checkpoint the WAL every N journal entries (0 = never)")
		seed       = fs.Int64("seed", 1, "seed for reconnect jitter")
		sharded    = fs.Bool("sharded", false, "run one independent protocol instance per ordering key (lazy, demand-created); all peers must agree")
		mux        = fs.Bool("mux", false, "multi-tenant mode: many logical channels with per-channel guarantee levels over one mesh; excludes -sharded, -proto, and -spec")
		channels   = fs.String("channels", "", "channels to open at boot in -mux mode: comma-separated name=spec pairs (bare name = tagless); implies -mux")
		dropRate   = fs.Float64("drop", 0, "loopback-experiment fault plan: envelope drop probability")
		dupRate    = fs.Float64("dup", 0, "loopback-experiment fault plan: envelope duplication probability")
		faultSeed  = fs.Int64("fault-seed", 1, "fault plan seed")
		mutexFrac  = fs.Int("mutex-fraction", 0, "runtime mutex profile fraction (SetMutexProfileFraction; 0 = off); enables the contention summary in /metrics")
		blockRate  = fs.Int("block-rate", 0, "runtime block profile rate in ns (SetBlockProfileRate; 0 = off)")
		heartbeat  = fs.Duration("heartbeat", 0, "heartbeat period: send liveness beats through the mesh and run a local failure detector over peers' beats (0 = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}
	addrs := strings.Split(*peers, ",")
	if *peers == "" || len(addrs) < 2 {
		return fmt.Errorf("-peers needs at least two comma-separated addresses")
	}
	if *id < 0 || *id >= len(addrs) {
		return fmt.Errorf("-id %d out of range for %d peers", *id, len(addrs))
	}
	if *channels != "" {
		*mux = true
	}
	if *mux {
		if *sharded {
			return fmt.Errorf("-sharded and -mux are mutually exclusive: sharding is per ordering key, channels are per tenant")
		}
		if *proto != "" || *spec != "" {
			return fmt.Errorf("-proto/-spec and -channels are mutually exclusive: a multiplexed daemon takes per-channel specifications")
		}
		if *heartbeat > 0 {
			return fmt.Errorf("-heartbeat is not supported in -mux mode")
		}
		return runMux(*id, addrs, *channels, *clientAddr, *httpAddr, *wal, *snapEvery, *seed,
			*dropRate, *dupRate, *faultSeed, out)
	}
	entry, err := selectProtocol(*proto, *spec, out)
	if err != nil {
		return err
	}
	maker, protoName := entry.Maker, entry.Name
	if *sharded {
		// The fingerprint marker makes a sharded daemon refuse an
		// unsharded peer at handshake: their wire formats agree but
		// their ordering semantics (per-key vs global domain) do not.
		maker, protoName = shard.New(entry.Maker), "sharded-"+entry.Name
	}

	var inj *transport.Injector
	if *dropRate > 0 || *dupRate > 0 {
		inj = transport.NewInjector(transport.FaultPlan{
			DropRate: *dropRate, DupRate: *dupRate, Seed: *faultSeed,
		})
	}
	collector := obs.NewCollector()
	metrics := obs.NewRegistry()
	var det *crash.Detector
	if *heartbeat > 0 {
		det = crash.NewDetector(len(addrs), crash.DetectorConfig{Interval: *heartbeat}, nil)
		defer det.Close()
	}
	node, err := netmesh.NewNode(netmesh.NodeConfig{
		Self:  event.ProcID(*id),
		Procs: len(addrs),
		Maker: maker,
		Mesh: netmesh.MeshConfig{
			Addrs:       addrs,
			Fingerprint: netmesh.Fingerprint(protoName, *spec, len(addrs)),
			Seed:        *seed,
			Injector:    inj,
		},
		WALPath:       *wal,
		SnapshotEvery: *snapEvery,
		Tracer:        collector,
		Metrics:       metrics,
		Heartbeat:     netmesh.HeartbeatConfig{Interval: *heartbeat, Detector: det},
	})
	if err != nil {
		return err
	}
	defer node.Close()

	rpc, err := modrpc.Serve(*clientAddr, node)
	if err != nil {
		return err
	}
	defer rpc.Close()

	httpBound := ""
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("-http: %w", err)
		}
		httpBound = ln.Addr().String()
		srv := &http.Server{Handler: fleetobs.Mux(metrics, collector)}
		go srv.Serve(ln)
		defer srv.Close()
	}

	fmt.Fprintf(out, "mod ready id=%d proto=%s mesh=%s client=%s http=%s\n",
		*id, protoName, node.Addr(), rpc.Addr(), httpBound)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case <-sigc:
	case <-rpc.ShutdownRequested():
	}
	// Let in-flight acks drain before the deferred teardown, then
	// report the run's tallies.
	time.Sleep(10 * time.Millisecond)
	if err := node.Err(); err != nil {
		return err
	}
	s := node.Stats()
	fmt.Fprintf(out, "mod exit id=%d delivered=%d user=%d control=%d retransmits=%d recoveries=%d\n",
		*id, len(node.Deliveries()), s.UserMessages, s.ControlMessages, s.Retransmits, s.Recoveries)
	if det != nil {
		c := det.Counters()
		fmt.Fprintf(out, "mod detector id=%d suspects=%v suspicions=%d alives=%d\n",
			*id, det.Suspects(), c.Suspicions, c.Alives)
	}
	return nil
}

// parseChannels splits a -channels value into boot-time channel specs:
// comma-separated entries, each "name" (tagless) or "name=spec".
func parseChannels(list string) ([]chanmux.Spec, error) {
	if list == "" {
		return nil, nil
	}
	var specs []chanmux.Spec
	for _, entry := range strings.Split(list, ",") {
		name, spec, _ := strings.Cut(entry, "=")
		if !chanmux.ValidName(name) {
			return nil, fmt.Errorf("-channels: invalid channel name %q", name)
		}
		specs = append(specs, chanmux.Spec{Name: name, Spec: spec})
	}
	return specs, nil
}

// runMux is the multi-tenant daemon body: one chanmux mesh, the boot
// channel table from -channels, and the channel-aware RPC surface.
func runMux(id int, addrs []string, channels, clientAddr, httpAddr, walDir string,
	snapEvery int, seed int64, dropRate, dupRate float64, faultSeed int64, out io.Writer) error {
	specs, err := parseChannels(channels)
	if err != nil {
		return err
	}
	if walDir != "" {
		if err := os.MkdirAll(walDir, 0o755); err != nil {
			return fmt.Errorf("-wal: %w", err)
		}
	}
	var inj *transport.Injector
	if dropRate > 0 || dupRate > 0 {
		inj = transport.NewInjector(transport.FaultPlan{
			DropRate: dropRate, DupRate: dupRate, Seed: faultSeed,
		})
	}
	collector := obs.NewCollector()
	metrics := obs.NewRegistry()
	m, err := chanmux.New(chanmux.Config{
		Self:  event.ProcID(id),
		Procs: len(addrs),
		Mesh: netmesh.MeshConfig{
			Addrs:    addrs,
			Seed:     seed,
			Injector: inj,
		},
		WALDir:        walDir,
		SnapshotEvery: snapEvery,
		Tracer:        collector,
		Metrics:       metrics,
	})
	if err != nil {
		return err
	}
	defer m.Close()
	for _, s := range specs {
		ch, err := m.Open(s)
		if err != nil {
			return fmt.Errorf("-channels: open %q: %w", s.Name, err)
		}
		fmt.Fprintf(out, "mod channel id=%d name=%s proto=%s class=%s\n",
			id, ch.Name(), ch.Proto(), ch.Class())
	}

	rpc, err := modrpc.ServeMux(clientAddr, m)
	if err != nil {
		return err
	}
	defer rpc.Close()

	httpBound := ""
	if httpAddr != "" {
		ln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return fmt.Errorf("-http: %w", err)
		}
		httpBound = ln.Addr().String()
		srv := &http.Server{Handler: fleetobs.Mux(metrics, collector)}
		go srv.Serve(ln)
		defer srv.Close()
	}

	fmt.Fprintf(out, "mod ready id=%d proto=mux mesh=%s client=%s http=%s\n",
		id, m.Addr(), rpc.Addr(), httpBound)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case <-sigc:
	case <-rpc.ShutdownRequested():
	}
	time.Sleep(10 * time.Millisecond)
	if err := m.Err(); err != nil {
		return err
	}
	for _, info := range m.Channels() {
		ch, err := m.Get(info.Name)
		if err != nil {
			continue
		}
		s := ch.Stats()
		fmt.Fprintf(out, "mod exit id=%d channel=%s delivered=%d user=%d control=%d retransmits=%d recoveries=%d\n",
			id, info.Name, len(ch.Deliveries()), s.UserMessages, s.ControlMessages, s.Retransmits, s.Recoveries)
	}
	return nil
}
