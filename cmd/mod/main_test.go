package main

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/modrpc"
	"msgorder/internal/userview"
)

// TestMain doubles as the daemon when re-exec'd: a test process
// started with MOD_HELPER=1 runs the real main loop against its argv.
// This is how the tests below get genuine multi-process meshes — 3
// separate OS processes talking over real loopback sockets — without a
// prebuilt binary.
func TestMain(m *testing.M) {
	if os.Getenv("MOD_HELPER") == "1" {
		if err := run(os.Args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mod:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func freeLoopbackAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

type daemon struct {
	cmd    *exec.Cmd
	ready  map[string]string // parsed k=v fields from the ready line
	client *modrpc.Client
	done   chan error

	waited  bool
	waitErr error
}

// wait blocks until the daemon process exits (memoized, so cleanup and
// assertions can both call it).
func (d *daemon) wait(t *testing.T, timeout time.Duration) error {
	t.Helper()
	if d.waited {
		return d.waitErr
	}
	select {
	case err := <-d.done:
		d.waited, d.waitErr = true, err
		return err
	case <-time.After(timeout):
		t.Fatalf("daemon %v did not exit", d.cmd.Args)
		return nil
	}
}

// startDaemon re-execs the test binary as one mod process and waits
// for its ready line.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "MOD_HELPER=1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, done: make(chan error, 1)}
	readyc := make(chan map[string]string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "mod ready ") {
				kv := map[string]string{}
				for _, f := range strings.Fields(line)[2:] {
					if k, v, ok := strings.Cut(f, "="); ok {
						kv[k] = v
					}
				}
				readyc <- kv
			}
		}
		d.done <- cmd.Wait()
	}()
	t.Cleanup(func() {
		cmd.Process.Kill()
		d.wait(t, 10*time.Second)
	})
	select {
	case d.ready = <-readyc:
	case err := <-d.done:
		d.waited, d.waitErr = true, err
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never printed its ready line")
	}
	c, err := modrpc.Dial(d.ready["client"], 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	d.client = c
	t.Cleanup(func() { c.Close() })
	return d
}

// startCluster boots n real mod processes on loopback.
func startCluster(t *testing.T, n int, extra func(i int) []string) []*daemon {
	t.Helper()
	peers := strings.Join(freeLoopbackAddrs(t, n), ",")
	ds := make([]*daemon, n)
	for i := range ds {
		args := []string{"-id", fmt.Sprint(i), "-peers", peers}
		if extra != nil {
			args = append(args, extra(i)...)
		}
		ds[i] = startDaemon(t, args...)
	}
	return ds
}

// TestThreeProcessCausalWorkload is the daemon's end-to-end gate: 3 OS
// processes, causal protocol, a lockstep workload driven over the
// client sockets, the global user view reassembled from the daemons'
// event logs, and a graceful RPC shutdown with exit status 0.
func TestThreeProcessCausalWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	ds := startCluster(t, 3, func(i int) []string {
		return []string{"-proto", "causal-rst", "-spec", "causal-b2"}
	})
	for i, d := range ds {
		pong, err := d.client.Ping()
		if err != nil {
			t.Fatal(err)
		}
		if pong.Proc != i || pong.Procs != 3 || pong.Proto != "causal-rst" {
			t.Fatalf("daemon %d ping = %+v", i, pong)
		}
	}

	msgs := []event.Message{
		{ID: 0, From: 0, To: 1}, {ID: 1, From: 1, To: 2}, {ID: 2, From: 2, To: 0},
		{ID: 3, From: 0, To: 2}, {ID: 4, From: 2, To: 1}, {ID: 5, From: 1, To: 0},
	}
	want := make([]int, 3)
	for _, m := range msgs {
		if err := ds[m.From].client.Invoke(int(m.ID), m.To, m.Color); err != nil {
			t.Fatalf("invoke m%d: %v", m.ID, err)
		}
		want[m.To]++
		if err := ds[m.To].client.Wait(want[m.To], 10*time.Second); err != nil {
			t.Fatalf("waiting for m%d: %v", m.ID, err)
		}
	}

	procEvents := make([][]event.Event, 3)
	for p, d := range ds {
		evs, _, err := d.client.Events()
		if err != nil {
			t.Fatal(err)
		}
		procEvents[p] = evs
	}
	v, err := userview.New(msgs, procEvents)
	if err != nil {
		t.Fatalf("cross-process view invalid: %v", err)
	}
	if !v.IsComplete() || !v.InCO() {
		t.Fatal("multi-process causal run incomplete or out of causal order")
	}

	for _, d := range ds {
		if err := d.client.Shutdown(); err != nil {
			t.Fatal(err)
		}
	}
	for i, d := range ds {
		if err := d.wait(t, 10*time.Second); err != nil {
			t.Fatalf("daemon %d exit = %v, want success", i, err)
		}
	}
}

// TestShardedClusterKeyedWorkload boots a real 2-process mesh with
// -sharded and drives a keyed workload over the client sockets: the
// ready line and ping must advertise the sharded runtime, and every
// per-key projection of the reassembled view must be complete and
// causal.
func TestShardedClusterKeyedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	ds := startCluster(t, 2, func(i int) []string {
		return []string{"-proto", "fifo", "-sharded"}
	})
	if got := ds[0].ready["proto"]; got != "sharded-fifo" {
		t.Fatalf("ready line proto = %q, want sharded-fifo", got)
	}
	pong, err := ds[0].client.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if pong.Proto != "sharded(fifo)" {
		t.Fatalf("ping proto = %q, want sharded(fifo)", pong.Proto)
	}

	kA, kB := event.KeyOf("orders"), event.KeyOf("payments")
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1, Key: kA},
		{ID: 1, From: 1, To: 0, Key: kB},
		{ID: 2, From: 0, To: 1, Key: kB},
		{ID: 3, From: 1, To: 0, Key: kA},
	}
	want := make([]int, 2)
	for _, m := range msgs {
		if err := ds[m.From].client.InvokeKeyed(int(m.ID), m.To, m.Color, m.Key); err != nil {
			t.Fatalf("invoke m%d: %v", m.ID, err)
		}
		want[m.To]++
		if err := ds[m.To].client.Wait(want[m.To], 10*time.Second); err != nil {
			t.Fatalf("waiting for m%d: %v", m.ID, err)
		}
	}

	procEvents := make([][]event.Event, 2)
	for p, d := range ds {
		evs, _, err := d.client.Events()
		if err != nil {
			t.Fatal(err)
		}
		procEvents[p] = evs
	}
	v, err := userview.New(msgs, procEvents)
	if err != nil {
		t.Fatalf("sharded cross-process view invalid: %v", err)
	}
	if !v.IsComplete() {
		t.Fatal("sharded keyed run incomplete")
	}
	for _, k := range v.Keys() {
		proj, err := v.ProjectKey(k)
		if err != nil {
			t.Fatal(err)
		}
		if !proj.IsComplete() || !proj.InCO() {
			t.Fatalf("key %#x projection incomplete or out of causal order", uint64(k))
		}
	}
}

// TestSpecAutoSelectsWitness checks the classifier path: -spec alone
// must classify the predicate and pick the minimal class witness.
func TestSpecAutoSelectsWitness(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	cases := []struct{ spec, wantProto string }{
		{"causal-b2", "causal-rst"},
		{"sync-2", "sync"},
	}
	for _, tc := range cases {
		ds := startCluster(t, 2, func(i int) []string {
			return []string{"-spec", tc.spec}
		})
		if got := ds[0].ready["proto"]; got != tc.wantProto {
			t.Fatalf("spec %s selected proto %s, want %s", tc.spec, got, tc.wantProto)
		}
		for _, d := range ds {
			d.client.Shutdown()
			d.wait(t, 10*time.Second)
		}
	}
}

// TestHTTPObservability checks /metrics and /trace after real traffic.
func TestHTTPObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	ds := startCluster(t, 2, func(i int) []string {
		args := []string{"-proto", "fifo"}
		if i == 0 {
			args = append(args, "-http", "127.0.0.1:0")
		}
		return args
	})
	if err := ds[0].client.Invoke(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := ds[1].client.Wait(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	base := "http://" + ds[0].ready["http"]
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body[:n]), "counters") {
		t.Fatalf("/metrics status %d body %q", resp.StatusCode, body[:n])
	}
	resp, err = http.Get(base + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	n, _ = resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body[:n]), "# TYPE") {
		t.Fatalf("/metrics?format=prom status %d body %q", resp.StatusCode, body[:n])
	}
	resp, err = http.Get(base + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	n, _ = resp.Body.Read(body)
	next := resp.Header.Get("X-Trace-Next")
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body[:n]), "\"op\"") {
		t.Fatalf("/trace status %d body %q", resp.StatusCode, body[:n])
	}
	if next == "" || next == "0" {
		t.Fatalf("/trace cursor header = %q, want a positive cursor", next)
	}
	// An up-to-date cursor yields an empty incremental scrape.
	resp, err = http.Get(base + "/trace?since=" + next)
	if err != nil {
		t.Fatal(err)
	}
	n, _ = resp.Body.Read(body)
	resp.Body.Close()
	if strings.TrimSpace(string(body[:n])) != "" {
		t.Fatalf("caught-up /trace?since=%s returned %q", next, body[:n])
	}
}

// TestMuxClusterMultiTenant boots a real 2-process multiplexed mesh
// with a boot-time channel table, drives traffic on channels with
// different guarantee levels over the client sockets, opens one more
// channel at runtime, and shuts down cleanly.
func TestMuxClusterMultiTenant(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	ds := startCluster(t, 2, func(i int) []string {
		return []string{"-mux", "-channels", "logs,orders=causal-b2"}
	})
	if got := ds[0].ready["proto"]; got != "mux" {
		t.Fatalf("ready line proto = %q, want mux", got)
	}
	pong, err := ds[0].client.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if pong.Proto != "mux" || pong.Procs != 2 {
		t.Fatalf("ping = %+v", pong)
	}
	chans, err := ds[0].client.Channels()
	if err != nil {
		t.Fatal(err)
	}
	if len(chans) != 2 || chans[0].Name != "logs" || chans[1].Name != "orders" {
		t.Fatalf("boot channels = %+v", chans)
	}
	if chans[0].Proto != "tagless" || chans[1].Proto != "causal-rst" {
		t.Fatalf("boot witnesses = %s/%s", chans[0].Proto, chans[1].Proto)
	}

	for i := 0; i < 3; i++ {
		if err := ds[0].client.ChannelInvoke("logs", i, 1, 0); err != nil {
			t.Fatalf("logs invoke %d: %v", i, err)
		}
		if err := ds[0].client.ChannelInvoke("orders", i, 1, 0); err != nil {
			t.Fatalf("orders invoke %d: %v", i, err)
		}
	}
	for _, name := range []string{"logs", "orders"} {
		if err := ds[1].client.ChannelWait(name, 3, 10*time.Second); err != nil {
			t.Fatalf("waiting on %s: %v", name, err)
		}
	}

	// A channel opened at runtime on both peers carries traffic too.
	for _, d := range ds {
		proto, class, err := d.client.OpenChannel("ctrl", "sync-2", "")
		if err != nil {
			t.Fatal(err)
		}
		if proto != "sync" || class != "general" {
			t.Fatalf("ctrl opened as %s/%s", proto, class)
		}
	}
	if err := ds[1].client.ChannelInvoke("ctrl", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := ds[0].client.ChannelWait("ctrl", 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// The tagless boot channel paid no ordering overhead while tagged
	// and general channels shared its connections.
	stats, err := ds[0].client.ChannelStats("logs")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Protocol.UserTagBytes != 0 || stats.Protocol.ControlMessages != 0 {
		t.Fatalf("tagless channel overhead: %+v", stats.Protocol)
	}

	for _, d := range ds {
		if err := d.client.Shutdown(); err != nil {
			t.Fatal(err)
		}
	}
	for i, d := range ds {
		if err := d.wait(t, 10*time.Second); err != nil {
			t.Fatalf("daemon %d exit = %v, want success", i, err)
		}
	}
}

// TestBadFlagsExitNonZero pins the daemon's CLI failure modes.
func TestBadFlagsExitNonZero(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	for _, args := range [][]string{
		{"-id", "0", "-peers", "127.0.0.1:1"},                                                     // one peer
		{"-id", "5", "-peers", "127.0.0.1:1,127.0.0.1:2"},                                         // id out of range
		{"-id", "0", "-peers", "127.0.0.1:1,127.0.0.1:2"},                                         // no proto/spec
		{"-id", "0", "-peers", "127.0.0.1:1,127.0.0.1:2", "-proto", "nope"},                       // unknown proto
		{"-id", "0", "-peers", "127.0.0.1:1,127.0.0.1:2", "-spec", "sync-2", "-proto", "tagless"}, // class too weak
		{"-id", "0", "-peers", "127.0.0.1:1,127.0.0.1:2", "-mux", "-sharded"},                     // sharding is per key, channels per tenant
		{"-id", "0", "-peers", "127.0.0.1:1,127.0.0.1:2", "-channels", "a,b", "-sharded"},         // -channels implies -mux
		{"-id", "0", "-peers", "127.0.0.1:1,127.0.0.1:2", "-channels", "a", "-proto", "fifo"},     // per-daemon proto vs per-channel specs
		{"-id", "0", "-peers", "127.0.0.1:1,127.0.0.1:2", "-channels", "a", "-spec", "causal-b2"}, // per-daemon spec vs per-channel specs
		{"-id", "0", "-peers", "127.0.0.1:1,127.0.0.1:2", "-channels", "bad name"},                // invalid channel name
		{"-id", "0", "-peers", "127.0.0.1:1,127.0.0.1:2", "-channels", "x=not a ( spec"},          // malformed channel spec
	} {
		cmd := exec.Command(os.Args[0], args...)
		cmd.Env = append(os.Environ(), "MOD_HELPER=1")
		if err := cmd.Run(); err == nil {
			t.Errorf("mod %v exited 0, want failure", args)
		}
	}
}
