// Command mostat is the fleet observability top: point it at a set of
// mod daemons' -http endpoints and it polls their /metrics and /trace
// surfaces, merges the per-process causal traces into one fleet
// timeline, and renders a live dashboard — fleet-wide msgs/sec,
// per-protocol inhibition p50/p99, end-to-end latency attribution
// (inhibition vs transport vs queue), per-key skew for sharded fleets,
// and the top contended locks when the daemons run with
// -mutex-fraction/-block-rate.
//
// Usage:
//
//	mostat -targets http://127.0.0.1:9100,http://127.0.0.1:9101
//	mostat -targets ... -snapshot -json   # one sample as JSON (for mobench)
//
// Interactive mode redraws every -interval; -count bounds the number
// of samples (0 = until interrupted). The -snapshot mode polls once
// and exits, with -json emitting the fleetobs.Status struct verbatim —
// the shape mobench's E15 rows embed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"msgorder/internal/fleetobs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mostat:", err)
		os.Exit(1)
	}
}

// normalizeTargets turns "-targets host:port,..." into base URLs.
func normalizeTargets(s string) ([]string, error) {
	var out []string
	for _, t := range strings.Split(s, ",") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		if !strings.HasPrefix(t, "http://") && !strings.HasPrefix(t, "https://") {
			t = "http://" + t
		}
		out = append(out, strings.TrimRight(t, "/"))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-targets needs at least one daemon base URL")
	}
	return out, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mostat", flag.ContinueOnError)
	var (
		targets  = fs.String("targets", "", "comma-separated mod -http endpoints (host:port or full URLs)")
		interval = fs.Duration("interval", 2*time.Second, "poll interval in interactive mode")
		count    = fs.Int("count", 0, "number of samples to take (0 = until interrupted)")
		snapshot = fs.Bool("snapshot", false, "poll once, print, and exit")
		jsonOut  = fs.Bool("json", false, "with -snapshot: emit the sample as JSON")
		topK     = fs.Int("topk", 5, "entries to keep in the skew and contention tables")
		noClear  = fs.Bool("no-clear", false, "do not clear the screen between samples")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	bases, err := normalizeTargets(*targets)
	if err != nil {
		return err
	}
	fleet := fleetobs.NewFleet(bases)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		cancel()
	}()

	if *snapshot {
		st, err := fleet.Status(ctx, *topK, nil, 0)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(st)
		}
		render(out, st, false)
		return nil
	}

	var prev *fleetobs.Status
	last := time.Now()
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for i := 0; *count == 0 || i < *count; i++ {
		now := time.Now()
		st, err := fleet.Status(ctx, *topK, prev, now.Sub(last))
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		last = now
		render(out, st, !*noClear)
		prev = &st
		if *count != 0 && i == *count-1 {
			break
		}
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
	}
	return nil
}

// render draws one sample as the top-like dashboard.
func render(out io.Writer, st fleetobs.Status, clear bool) {
	if clear {
		fmt.Fprint(out, "\033[2J\033[H")
	}
	fmt.Fprintf(out, "mostat — %d daemons · %d delivered · %.0f msgs/s\n",
		st.Targets, st.Deliveries, st.MsgsPerSec)
	if err := st.Check.Err(); err != nil {
		fmt.Fprintf(out, "TIMELINE INVALID: %v\n", err)
	} else {
		fmt.Fprintf(out, "timeline: %d events, %d msgs, causally valid\n", st.Check.Events, st.Check.Msgs)
	}
	if len(st.Inhibition) > 0 {
		fmt.Fprintf(out, "\n%-16s %12s %12s %12s %12s\n", "protocol", "inh.send p50", "p99", "inh.dlv p50", "p99")
		for _, pi := range st.Inhibition {
			fmt.Fprintf(out, "%-16s %12d %12d %12d %12d\n",
				pi.Proto, pi.SendP50, pi.SendP99, pi.DeliverP50, pi.DeliverP99)
		}
	}
	if st.Attribution.Msgs > 0 {
		a := st.Attribution
		fmt.Fprintf(out, "\nlatency attribution over %d msgs (p50/p99 µs · share)\n", a.Msgs)
		fmt.Fprintf(out, "  total     %8d %8d\n", a.Total.P50, a.Total.P99)
		fmt.Fprintf(out, "  inhibit   %8d %8d   %5.1f%%\n", a.Inhibit.P50, a.Inhibit.P99, a.Inhibit.Share*100)
		fmt.Fprintf(out, "  transport %8d %8d   %5.1f%%\n", a.Transport.P50, a.Transport.P99, a.Transport.Share*100)
		fmt.Fprintf(out, "  queue     %8d %8d   %5.1f%%\n", a.Queue.P50, a.Queue.P99, a.Queue.Share*100)
	}
	if st.Skew.Deliveries > 0 {
		fmt.Fprintf(out, "\nkey skew: %d domains, max share %.1f%%\n", st.Skew.Keys, st.Skew.MaxShare*100)
		for _, kl := range st.Skew.Top {
			fmt.Fprintf(out, "  k%-16x %8d (%.1f%%)\n", uint64(kl.Key), kl.Deliveries, kl.Share*100)
		}
	}
	if len(st.Contention) > 0 {
		fmt.Fprintf(out, "\ncontention leaders (cumulative delay µs)\n")
		for _, cl := range st.Contention {
			fmt.Fprintf(out, "  %-48s %12d\n", cl.Name, cl.DelayUS)
		}
	}
}
