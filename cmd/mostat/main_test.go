package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/fleetobs"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
)

// fakeDaemon serves a fleetobs mux over a registry/collector carrying
// one delivered message's worth of real probe records.
func fakeDaemon(t *testing.T, timebase int64) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	col := obs.NewCollector()
	reg.Gauge(obs.TimebaseGauge, timebase)
	step := int64(0)
	p := obs.NewProbe(2, col, reg, "fifo", func() int64 { return step })
	m := event.Message{ID: 0, From: 0, To: 1, Key: event.KeyOf("orders")}
	p.Invoke(m)
	w := protocol.Wire{From: 0, To: 1, Kind: protocol.UserWire, Msg: 0, Key: m.Key}
	step = 4
	p.Send(&w)
	step = 9
	p.Receive(w)
	step = 11
	p.Deliver(1, 0)
	srv := httptest.NewServer(fleetobs.Mux(reg, col))
	t.Cleanup(srv.Close)
	return srv
}

func TestSnapshotJSON(t *testing.T) {
	srv := fakeDaemon(t, 5000)
	var buf bytes.Buffer
	if err := run([]string{"-targets", srv.URL, "-snapshot", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var st fleetobs.Status
	if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
		t.Fatalf("snapshot not valid JSON: %v\n%s", err, buf.String())
	}
	if st.Targets != 1 || st.Deliveries != 1 {
		t.Fatalf("status = %+v, want 1 target / 1 delivery", st)
	}
	if st.Attribution.Msgs != 1 || st.Attribution.Total.P50 != 11 {
		t.Fatalf("attribution = %+v, want 1 msg total 11", st.Attribution)
	}
	if len(st.Inhibition) != 1 || st.Inhibition[0].Proto != "fifo" {
		t.Fatalf("inhibition table = %+v", st.Inhibition)
	}
	if st.Skew.Keys != 1 {
		t.Fatalf("skew = %+v, want the one keyed domain", st.Skew)
	}
	if err := st.Check.Err(); err != nil {
		t.Fatalf("single-daemon timeline invalid: %v", err)
	}
}

func TestInteractiveCount(t *testing.T) {
	srv := fakeDaemon(t, 0)
	var buf bytes.Buffer
	err := run([]string{"-targets", srv.URL, "-count", "2", "-interval", "10ms", "-no-clear"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "mostat —") != 2 {
		t.Fatalf("want 2 rendered samples, got:\n%s", out)
	}
	if !strings.Contains(out, "causally valid") {
		t.Fatalf("render missing validation line:\n%s", out)
	}
	if !strings.Contains(out, "latency attribution") || !strings.Contains(out, "key skew") {
		t.Fatalf("render missing sections:\n%s", out)
	}
}

func TestTargetNormalization(t *testing.T) {
	got, err := normalizeTargets(" 127.0.0.1:9100 ,http://h:1/")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "http://127.0.0.1:9100" || got[1] != "http://h:1" {
		t.Fatalf("normalized = %v", got)
	}
	if _, err := normalizeTargets(" , "); err == nil {
		t.Fatal("empty targets accepted")
	}
}
