package main

import (
	"strings"
	"testing"
)

func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestClassifyArgument(t *testing.T) {
	out := runOut(t, "x, y : x.s -> y.s && y.r -> x.r")
	for _, want := range []string{"class: TAGGED", "minimum cycle order: 1", "β vertices: x"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCatalogEntry(t *testing.T) {
	out := runOut(t, "-name", "handoff")
	for _, want := range []string{"catalog entry:", "class: GENERAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestList(t *testing.T) {
	out := runOut(t, "-list")
	for _, want := range []string{"fifo", "sync-2", "second-before-first"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestDOT(t *testing.T) {
	out := runOut(t, "-dot", "x, y : x.s -> y.s && y.r -> x.r")
	if !strings.Contains(out, "digraph predicate") {
		t.Errorf("missing DOT output:\n%s", out)
	}
}

func TestCycles(t *testing.T) {
	out := runOut(t, "-cycles", "-name", "example-1")
	if !strings.Contains(out, "simple cycles:") || strings.Count(out, "order ") < 2 {
		t.Errorf("cycle listing incomplete:\n%s", out)
	}
}

func TestWitness(t *testing.T) {
	out := runOut(t, "-witness", "x1, x2 : x1.s -> x2.r && x2.s -> x1.r")
	if !strings.Contains(out, "causally ordered run satisfying the predicate") {
		t.Errorf("missing CO witness:\n%s", out)
	}
	if !strings.Contains(out, "logically synchronous run satisfying the predicate (⇒ unimplementable): none") {
		t.Errorf("implementable spec must have no sync witness:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	cases := [][]string{
		{},                  // no predicate
		{"-name", "nope"},   // unknown entry
		{"not a predicate"}, // parse error
		{"a", "b"},          // too many args
	}
	for _, args := range cases {
		if err := run(args, &b); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
