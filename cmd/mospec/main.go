// Command mospec classifies message-ordering specifications written as
// forbidden predicates, reporting the protocol class required (tagless /
// tagged / general / unimplementable) with the predicate graph, its
// minimum-order cycle, β vertices, and the Lemma 4 contraction.
//
// Usage:
//
//	mospec [flags] "x, y : x.s -> y.s && y.r -> x.r"
//	mospec -name fifo            # classify a catalog entry
//	mospec -list                 # list the catalog
//	mospec -dot "..."            # also emit the predicate graph in DOT
//	mospec -witness "..."        # construct separating witness runs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"msgorder/internal/catalog"
	"msgorder/internal/classify"
	"msgorder/internal/pgraph"
	"msgorder/internal/predicate"
	"msgorder/internal/trace"
	"msgorder/internal/universe"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mospec:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mospec", flag.ContinueOnError)
	var (
		name    = fs.String("name", "", "classify a catalog entry instead of a predicate argument")
		list    = fs.Bool("list", false, "list the specification catalog and exit")
		dot     = fs.Bool("dot", false, "print the predicate graph in Graphviz DOT")
		witness = fs.Bool("witness", false, "construct witness runs separating the limit sets")
		cycles  = fs.Bool("cycles", false, "enumerate all simple cycles")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range catalog.Entries() {
			fmt.Fprintf(out, "%-22s %-16s %s\n", e.Name, e.PaperClass, e.Title)
		}
		return nil
	}

	var pred *predicate.Predicate
	switch {
	case *name != "":
		e, ok := catalog.ByName(*name)
		if !ok {
			return fmt.Errorf("unknown catalog entry %q (try -list)", *name)
		}
		pred = e.Pred
		fmt.Fprintf(out, "catalog entry: %s (%s)\n", e.Title, e.Source)
	case fs.NArg() == 1:
		var err error
		pred, err = predicate.Parse(fs.Arg(0))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("expected exactly one predicate argument or -name/-list")
	}

	fmt.Fprintf(out, "predicate: %s\n\n", pred)
	res, err := classify.Classify(pred)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "class: %s\n", strings.ToUpper(res.Class.String()))
	if res.HasCycle {
		fmt.Fprintf(out, "minimum cycle order: %d\n", res.MinOrder)
	}
	fmt.Fprintf(out, "\nexplanation:\n")
	for _, n := range res.Notes {
		fmt.Fprintf(out, "  - %s\n", n)
	}

	if len(res.Contraction.Steps) > 1 {
		fmt.Fprintf(out, "\nLemma 4 contraction:\n")
		for i, step := range res.Contraction.Steps {
			fmt.Fprintf(out, "  step %d: %s (order %d)\n", i, res.Graph.CycleString(step), step.Order())
		}
	}

	if *cycles {
		fmt.Fprintf(out, "\nsimple cycles:\n")
		g := res.Graph
		g.SimpleCycles(func(c pgraph.Cycle) bool {
			fmt.Fprintf(out, "  order %d: %s\n", c.Order(), g.CycleString(c))
			return true
		})
	}

	if *dot {
		fmt.Fprintf(out, "\n%s", res.Graph.DOT())
	}

	if *witness {
		fmt.Fprintf(out, "\nwitness runs:\n")
		printWitness(out, "logically synchronous run satisfying the predicate (⇒ unimplementable)",
			func() (diag string, err error) {
				r, err := universe.SyncWitness(pred)
				if err != nil {
					return "", err
				}
				return trace.UserDiagram(r), nil
			})
		printWitness(out, "causally ordered run satisfying the predicate (⇒ control messages required)",
			func() (string, error) {
				r, err := universe.COWitness(pred)
				if err != nil {
					return "", err
				}
				return trace.UserDiagram(r), nil
			})
		printWitness(out, "valid run satisfying the predicate (⇒ some protocol required)",
			func() (string, error) {
				r, err := universe.AsyncWitness(pred)
				if err != nil {
					return "", err
				}
				return trace.UserDiagram(r), nil
			})
	}
	return nil
}

func printWitness(out io.Writer, title string, build func() (string, error)) {
	diag, err := build()
	if err != nil {
		fmt.Fprintf(out, "  %s: none (%v)\n", title, err)
		return
	}
	fmt.Fprintf(out, "  %s:\n", title)
	for _, line := range strings.Split(strings.TrimRight(diag, "\n"), "\n") {
		fmt.Fprintf(out, "    %s\n", line)
	}
}
