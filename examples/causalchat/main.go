// Command causalchat demonstrates the paper's motivating scenario for causal ordering. Three
// users chat; replies are triggered by deliveries, so a reply is causally
// after the message it answers. Under a reordering network the naive
// (tagless) transport shows replies before their questions; the RST
// matrix-clock protocol — tagging only, as Theorem 1.2 promises — never
// does.
package main

import (
	"fmt"
	"log"

	"msgorder"
)

func main() {
	spec, _ := msgorder.CatalogByName("causal-b2")
	protos := msgorder.Protocols()

	fmt.Println("hunting for a reply-before-question anomaly under the tagless transport...")
	anomalySeed := int64(-1)
	for seed := int64(1); seed <= 500; seed++ {
		view, err := chat(protos["tagless"], seed)
		if err != nil {
			log.Fatal(err)
		}
		if m, bad := msgorder.FindViolation(view, spec.Pred); bad {
			anomalySeed = seed
			fmt.Printf("anomaly at seed %d (%s):\n", seed, m.String(spec.Pred))
			fmt.Print(msgorder.Diagram(view))
			break
		}
	}
	if anomalySeed < 0 {
		fmt.Println("no anomaly found (unexpected — widen the search)")
		return
	}

	fmt.Println("\nreplaying every seed up to the anomaly with causal-rst (tags only)...")
	for seed := int64(1); seed <= anomalySeed; seed++ {
		view, err := chat(protos["causal-rst"], seed)
		if err != nil {
			log.Fatal(err)
		}
		if _, bad := msgorder.FindViolation(view, spec.Pred); bad {
			log.Fatalf("causal protocol violated causal ordering at seed %d!", seed)
		}
	}
	fmt.Printf("causal-rst: no anomaly in %d seeds — piggybacked matrix clocks are enough,\n", anomalySeed)
	fmt.Println("exactly the paper's claim that X_co needs tagging but no control messages.")
}

// chat runs one seeded chat session: a few opening messages, each
// delivery prompting a reply with high probability.
func chat(maker msgorder.ProtocolMaker, seed int64) (*msgorder.Run, error) {
	res, err := msgorder.Simulate(msgorder.SimConfig{
		Maker:       maker,
		Procs:       3,
		InitialMsgs: 6,
		ChainBudget: 10,
		ChainProb:   0.8,
		Seed:        seed,
		DelayMax:    50,
	})
	if err != nil {
		return nil, err
	}
	return res.View, nil
}
