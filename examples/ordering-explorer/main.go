// Command ordering-explorer walks the bounded universe of runs and watches the
// paper's limit-set lattice X_sync ⊂ X_co ⊂ X_async materialize, then
// checks the whole specification catalog against it: a specification's
// class is readable off which limit sets it contains.
package main

import (
	"fmt"

	"msgorder"
	"msgorder/internal/universe"
	"msgorder/internal/userview"
)

func main() {
	const (
		nMsgs  = 3
		nProcs = 2
	)
	fmt.Printf("enumerating every complete run with %d messages over %d processes...\n\n", nMsgs, nProcs)

	var total, inCO, inSync int
	var views []*msgorder.Run
	universe.Runs(nMsgs, nProcs, func(r *userview.Run) bool {
		total++
		if r.InCO() {
			inCO++
		}
		if r.InSync() {
			inSync++
		}
		views = append(views, r)
		return true
	})
	fmt.Printf("universe: %d runs\n", total)
	fmt.Printf("  in X_async: %d (all of them)\n", total)
	fmt.Printf("  in X_co:    %d\n", inCO)
	fmt.Printf("  in X_sync:  %d\n", inSync)
	fmt.Printf("lattice: X_sync ⊂ X_co ⊂ X_async: %v\n\n", inSync < inCO && inCO < total)

	// For each catalog entry, measure |X_B| on the universe and check the
	// containment signature the classification predicts:
	//   tagless  ⇔ X_B = X_async,
	//   tagged   ⇒ X_co ⊆ X_B (and X_B ⊊ X_async),
	//   general  ⇒ X_sync ⊆ X_B (and X_co ⊄ X_B),
	//   unimplementable ⇒ X_sync ⊄ X_B.
	fmt.Printf("%-22s %-16s %8s %10s %10s %10s\n",
		"specification", "class", "|X_B|", "⊇X_sync", "⊇X_co", "=X_async")
	for _, e := range msgorder.Catalog() {
		res, err := msgorder.Classify(e.Pred)
		if err != nil {
			fmt.Printf("%-22s error: %v\n", e.Name, err)
			continue
		}
		size, supSync, supCO := 0, true, true
		for _, v := range views {
			sat := msgorder.Satisfies(v, e.Pred)
			if sat {
				size++
			}
			if v.InSync() && !sat {
				supSync = false
			}
			if v.InCO() && !sat {
				supCO = false
			}
		}
		fmt.Printf("%-22s %-16s %8d %10v %10v %10v\n",
			e.Name, res.Class, size, supSync, supCO, size == total)
	}
	fmt.Println("\nreading the table: implementable ⇔ ⊇X_sync; tagged-implementable ⇔ ⊇X_co;")
	fmt.Println("trivially implementable ⇔ =X_async — Theorem 1 as a census.")

	// The census above includes self-addressed messages, where causal-b1
	// and causal-b3 fail to contain X_co: Lemma 3.2's equivalence holds
	// only in the standard model without self-sends. Rerun the census for
	// that model and watch the anomaly disappear.
	fmt.Println("\nrestricted census (no self-addressed messages):")
	var views2 []*msgorder.Run
	total2 := universe.RunsNoSelf(nMsgs, nProcs, func(r *userview.Run) bool {
		views2 = append(views2, r)
		return true
	})
	fmt.Printf("%-22s %8s %10s\n", "specification", "|X_B|", "⊇X_co")
	for _, name := range []string{"causal-b1", "causal-b2", "causal-b3"} {
		e, _ := msgorder.CatalogByName(name)
		size, supCO := 0, true
		for _, v := range views2 {
			sat := msgorder.Satisfies(v, e.Pred)
			if sat {
				size++
			}
			if v.InCO() && !sat {
				supCO = false
			}
		}
		fmt.Printf("%-22s %8d %10v\n", name, size, supCO)
	}
	fmt.Printf("(%d runs; B1, B2, B3 coincide exactly as Lemma 3.2 states)\n", total2)
}
