// Command handoff replays the paper's Section 5 mobile-computing example. When a mobile
// unit moves between base stations, the handoff message must not be
// crossed by ordinary traffic. The classifier proves tags cannot enforce
// this (control messages are necessary); the witness construction
// exhibits a causally ordered run that still crosses the handoff; and the
// sequencer protocol demonstrates the ordering holding in execution.
package main

import (
	"fmt"
	"log"

	"msgorder"
)

func main() {
	entry, ok := msgorder.CatalogByName("handoff")
	if !ok {
		log.Fatal("handoff spec missing from catalog")
	}
	fmt.Printf("specification: %s\n\n", entry.Pred)

	// 1. Classify: control messages are necessary.
	res, err := msgorder.Classify(entry.Pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classification: %s\n%s\n\n", res.Class, res.Explanation())

	// 2. The paper's Theorem 4.2 witness: a causally ordered run that
	// violates the spec — so no amount of piggybacking can help.
	witness, err := msgorder.COWitness(entry.Pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("causally ordered run crossing the handoff (red = handoff):")
	fmt.Print(msgorder.Diagram(witness))
	fmt.Printf("witness is causally ordered: %v, logically synchronous: %v\n\n",
		witness.InCO(), witness.InSync())

	// 3. Run the general-class sequencer protocol with handoff traffic:
	// no crossing in any seed.
	for seed := int64(1); seed <= 50; seed++ {
		sim, err := msgorder.Simulate(msgorder.SimConfig{
			Maker:       msgorder.Protocols()["sync"],
			Procs:       4,
			InitialMsgs: 12,
			ChainBudget: 8,
			Seed:        seed,
			Colors: []msgorder.Color{
				msgorder.ColorNone, msgorder.ColorNone, msgorder.ColorRed,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		if m, bad := msgorder.FindViolation(sim.View, entry.Pred); bad {
			log.Fatalf("sequencer crossed a handoff at seed %d: %s", seed, m.String(entry.Pred))
		}
	}
	fmt.Println("sequencer protocol: 50 seeds of mixed handoff traffic, zero crossings —")
	fmt.Println("the control messages the paper proves necessary are also sufficient.")
}
