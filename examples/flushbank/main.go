// Command flushbank puts flush channels to work. A branch streams transfer records
// to headquarters and periodically sends an audit marker that must arrive
// after every transfer that preceded it — a forward-flush send — while
// ordinary transfers may ride any network path. The F-channel protocol
// implements this with tags alone, as its order-1 predicate cycle
// predicts.
package main

import (
	"fmt"
	"log"

	"msgorder"
)

func main() {
	entry, ok := msgorder.CatalogByName("local-forward-flush")
	if !ok {
		log.Fatal("flush spec missing from catalog")
	}
	fmt.Printf("specification (red = audit marker): %s\n\n", entry.Pred)

	res, err := msgorder.Classify(entry.Pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classification: %s — the marker needs only a tag\n\n", res.Class)

	flush := msgorder.Protocols()["flush"]
	tagless := msgorder.Protocols()["tagless"]

	// The branch (P0) sends 9 transfers and 3 audit markers to HQ (P1).
	colors := []msgorder.Color{
		msgorder.ColorNone, msgorder.ColorNone, msgorder.ColorNone, msgorder.ColorRed,
	}
	runOnce := func(maker msgorder.ProtocolMaker, seed int64) *msgorder.Run {
		sim, err := msgorder.Simulate(msgorder.SimConfig{
			Maker:       maker,
			Procs:       2,
			InitialMsgs: 12,
			Seed:        seed,
			Colors:      colors,
			DelayMax:    60,
		})
		if err != nil {
			log.Fatal(err)
		}
		return sim.View
	}

	// Baseline: raw transport loses the audit invariant.
	for seed := int64(1); seed <= 500; seed++ {
		view := runOnce(tagless, seed)
		if m, bad := msgorder.FindViolation(view, entry.Pred); bad {
			fmt.Printf("raw transport, seed %d: a transfer outran its audit marker (%s)\n",
				seed, m.String(entry.Pred))
			fmt.Print(msgorder.Diagram(view))
			break
		}
	}

	// Flush channels: the invariant holds across seeds, and ordinary
	// transfers still reorder freely (cheaper than full FIFO).
	reorders := 0
	fifoPred, _ := msgorder.CatalogByName("fifo")
	for seed := int64(1); seed <= 200; seed++ {
		view := runOnce(flush, seed)
		if m, bad := msgorder.FindViolation(view, entry.Pred); bad {
			log.Fatalf("flush channel broke the audit invariant at seed %d: %s",
				seed, m.String(entry.Pred))
		}
		if _, bad := msgorder.FindViolation(view, fifoPred.Pred); bad {
			reorders++
		}
	}
	fmt.Printf("\nflush channels: 200 seeds, audit invariant intact; ordinary transfers\n")
	fmt.Printf("reordered in %d/200 runs — the protocol buys exactly the ordering paid for.\n", reorders)
}
