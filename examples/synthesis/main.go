// Command synthesis goes from a specification you write to a protocol you can run —
// the companion-paper direction the introduction points at. We invent an
// ordering ("no plain message may overtake a priority (red) message on
// its channel"), let the library classify it, generate a protocol for
// it, and watch the generated protocol enforce exactly that ordering and
// nothing more.
package main

import (
	"fmt"
	"log"

	"msgorder"
)

func main() {
	// Priority lanes: red messages act as barriers on their channel —
	// a message sent after a red one must not be delivered before it.
	spec, err := msgorder.Parse(`x, y :
		process(x.s) == process(y.s) && process(x.r) == process(y.r) && color(x) == red :
		x.s -> y.s && y.r -> x.r`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("specification: %s\n\n", spec)

	res, err := msgorder.Classify(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classification: %s\n\n", res.Class)

	maker, plan, err := msgorder.GenerateProtocol(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated protocol: %s strategy\n", plan.Strategy)
	for _, n := range plan.Notes {
		fmt.Printf("  %s\n", n)
	}

	colors := []msgorder.Color{
		msgorder.ColorNone, msgorder.ColorNone, msgorder.ColorNone, msgorder.ColorRed,
	}
	violations, reorders := 0, 0
	fifoSpec, _ := msgorder.CatalogByName("fifo")
	for seed := int64(1); seed <= 300; seed++ {
		sim, err := msgorder.Simulate(msgorder.SimConfig{
			Maker:       maker,
			Procs:       2,
			InitialMsgs: 14,
			Seed:        seed,
			Colors:      colors,
			DelayMax:    60,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !msgorder.Satisfies(sim.View, spec) {
			violations++
		}
		if !msgorder.Satisfies(sim.View, fifoSpec.Pred) {
			reorders++
		}
	}
	fmt.Printf("\n300 adversarial seeds: %d violations of the priority ordering,\n", violations)
	fmt.Printf("while plain messages still reordered freely in %d runs —\n", reorders)
	fmt.Println("the generated protocol enforces exactly what the predicate forbids.")
}
