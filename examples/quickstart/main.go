// Command quickstart specifies a message ordering as a forbidden predicate,
// classifies it, and tests a recorded run against it — the library's core
// loop in a dozen lines.
package main

import (
	"fmt"
	"log"

	"msgorder"
)

func main() {
	// Causal ordering: forbid "x sent causally before y, yet y delivered
	// before x at the same place".
	spec, err := msgorder.Parse("x, y : x.s -> y.s && y.r -> x.r")
	if err != nil {
		log.Fatal(err)
	}

	// Which protocol machinery does it need?
	res, err := msgorder.Classify(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("specification: %s\n", spec)
	fmt.Printf("classification: %s (minimum cycle order %d)\n\n", res.Class, res.MinOrder)
	fmt.Println(res.Explanation())

	// Record a run where message m1 overtakes m0 on the same channel and
	// check it.
	msgs := []msgorder.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 1},
	}
	run, err := msgorder.NewRun(msgs, [][]msgorder.Event{
		{{Msg: 0, Kind: msgorder.Send}, {Msg: 1, Kind: msgorder.Send}},
		{{Msg: 1, Kind: msgorder.Deliver}, {Msg: 0, Kind: msgorder.Deliver}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecorded run:")
	fmt.Print(msgorder.Diagram(run))
	if m, bad := msgorder.FindViolation(run, spec); bad {
		fmt.Printf("violation: %s\n", m.String(spec))
	} else {
		fmt.Println("run satisfies the specification")
	}
}
